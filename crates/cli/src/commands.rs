//! Command implementations. Everything returns strings/artifacts so the
//! logic is testable; `main` only does process plumbing.

use std::collections::HashMap;
use std::fmt;

use axmul_core::Multiplier;
use axmul_fabric::area::AreaReport;
use axmul_fabric::export::{to_verilog, to_vhdl};
use axmul_fabric::power::{measure, uniform_stimulus, EnergyModel};
use axmul_fabric::timing::{analyze, DelayModel};
use axmul_metrics::ErrorStats;
use axmul_susan::{susan_smooth, synthetic_test_image, Image, SusanParams};

use crate::arch::{Arch, ALL};

/// Errors surfaced to the CLI user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line (message explains).
    Usage(String),
    /// A file could not be read or written.
    Io(std::io::Error),
    /// Width unsupported by the chosen architecture.
    Width(axmul_core::WidthError),
    /// Unknown architecture name.
    Arch(crate::arch::ParseArchError),
    /// A PGM file failed to parse.
    Image(axmul_susan::ParseImageError),
    /// Netlist simulation failed during DSE characterization.
    Fabric(axmul_fabric::FabricError),
    /// NN inference or accuracy search failed.
    Nn(axmul_nn::NnError),
    /// The lint gate failed; the payload is the full rendered report.
    Lint(String),
    /// A netlist interchange document failed to import.
    Netio(axmul_netio::NetioError),
    /// A SAT proof could not be completed (interface mismatch, budget
    /// exhaustion, or an encode failure on a hostile netlist).
    Sat(axmul_sat::SatError),
    /// A SAT verification ran to completion and *refuted* the claim;
    /// the payload is the rendered verdict with its counterexample.
    Verify(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Width(e) => write!(f, "{e}"),
            CliError::Arch(e) => write!(f, "{e}"),
            CliError::Image(e) => write!(f, "{e}"),
            CliError::Fabric(e) => write!(f, "{e}"),
            CliError::Nn(e) => write!(f, "{e}"),
            CliError::Lint(report) => write!(f, "lint gate failed\n{report}"),
            CliError::Netio(e) => write!(f, "import failed [{}]: {e}", e.code()),
            CliError::Sat(e) => write!(f, "sat proof failed: {e}"),
            CliError::Verify(report) => write!(f, "verification refuted\n{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<axmul_core::WidthError> for CliError {
    fn from(e: axmul_core::WidthError) -> Self {
        CliError::Width(e)
    }
}
impl From<crate::arch::ParseArchError> for CliError {
    fn from(e: crate::arch::ParseArchError) -> Self {
        CliError::Arch(e)
    }
}
impl From<axmul_susan::ParseImageError> for CliError {
    fn from(e: axmul_susan::ParseImageError) -> Self {
        CliError::Image(e)
    }
}
impl From<axmul_fabric::FabricError> for CliError {
    fn from(e: axmul_fabric::FabricError) -> Self {
        CliError::Fabric(e)
    }
}
impl From<axmul_nn::NnError> for CliError {
    fn from(e: axmul_nn::NnError) -> Self {
        CliError::Nn(e)
    }
}
impl From<axmul_netio::NetioError> for CliError {
    fn from(e: axmul_netio::NetioError) -> Self {
        CliError::Netio(e)
    }
}
impl From<axmul_sat::SatError> for CliError {
    fn from(e: axmul_sat::SatError) -> Self {
        CliError::Sat(e)
    }
}

/// Parsed `--key value` options.
struct Opts(HashMap<String, String>);

/// Options that are bare flags (no value follows them).
const FLAGS: &[&str] = &[
    "all",
    "json",
    "quick",
    "dse",
    "lint",
    "absint",
    "characterize",
    "verify",
];

impl Opts {
    fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--").or_else(|| key.strip_prefix('-')) else {
                return Err(CliError::Usage(format!("unexpected argument `{key}`")));
            };
            if FLAGS.contains(&name) {
                map.insert(name.to_string(), String::new());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("`{key}` needs a value")))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Opts(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn flag(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    fn arch(&self) -> Result<Arch, CliError> {
        Ok(self
            .get("arch")
            .ok_or_else(|| CliError::Usage("missing --arch".to_string()))?
            .parse::<Arch>()?)
    }

    fn bits(&self) -> Result<u32, CliError> {
        self.get("bits").map_or(Ok(8), |v| {
            v.parse()
                .map_err(|_| CliError::Usage(format!("bad --bits `{v}`")))
        })
    }
}

/// Runs one CLI invocation. `args` excludes the program name. Returns
/// the text to print on stdout; file outputs (`-o`) are written as a
/// side effect.
///
/// # Errors
///
/// Returns [`CliError`] on bad usage, unsupported widths, or I/O
/// failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(usage());
    };
    // `import` takes a positional FILE argument, which the `--key
    // value` option parser would reject; peel it off first.
    if cmd == "import" {
        let Some((file, rest)) = rest.split_first() else {
            return Err(CliError::Usage("import needs a FILE argument".into()));
        };
        if file.starts_with('-') {
            return Err(CliError::Usage(
                "import needs the FILE before any options".into(),
            ));
        }
        return import(file, &Opts::parse(rest)?);
    }
    // `verify` also accepts a positional FILE (imported netlist).
    if cmd == "verify" {
        if let Some((file, rest)) = rest.split_first() {
            if !file.starts_with('-') {
                return verify_file(file, &Opts::parse(rest)?);
            }
        }
        return verify(&Opts::parse(rest)?);
    }
    let opts = Opts::parse(rest)?;
    match cmd.as_str() {
        "list" => Ok(list()),
        "generate" => generate(&opts),
        "characterize" => characterize(&opts),
        "stats" => stats(&opts),
        "smooth" => smooth(&opts),
        "dse" => dse(&opts),
        "absint" => absint(&opts),
        "nn" => nn(&opts),
        "lint" => lint(&opts),
        "serve" => serve(&opts),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn usage() -> String {
    "axmul — FPGA-optimized approximate multiplier library (DAC'18 reproduction)\n\
     \n\
     commands:\n\
     \x20 list                                         available architectures\n\
     \x20 generate    --arch A --bits N [--format verilog|vhdl] [-o FILE]\n\
     \x20 characterize --arch A --bits N               area / timing / energy\n\
     \x20 stats       --arch A --bits N [--samples M]  error statistics\n\
     \x20 smooth      --arch A [--width W --height H] [--input in.pgm] [-o out.pgm]\n\
     \x20 dse         --width N [--strategy exhaustive|random|hill] [--workers W]\n\
     \x20             [--budget B] [--restarts R] [--seed S] [--out-dir DIR]\n\
     \x20                                          design-space exploration\n\
     \x20 absint      --config KEY | --arch A [--bits N]\n\
     \x20             [--json]                     sound static error/range bounds\n\
     \x20 nn          [--arch A | --all] [--workers W] [--quick]\n\
     \x20             [--dse [--floor F]]          int8 inference accuracy\n\
     \x20 lint        --arch A [--bits N] | --all [--bits N]\n\
     \x20             [--json] [--deny warnings]   static netlist analysis\n\
     \x20 serve       [--port N | --socket PATH] [--cache-dir DIR]\n\
     \x20             [--workers W] [--duration-s S]\n\
     \x20                                          characterization daemon\n\
     \x20 import      FILE [--format verilog|axnl] [--lint] [--absint]\n\
     \x20             [--characterize] [--verify --config KEY] [--json] [-o FILE]\n\
     \x20                                          read a netlist back in\n\
     \x20 verify      --config KEY | --arch A [--bits N] [--json]\n\
     \x20                                          SAT-prove the exact worst-case\n\
     \x20                                          error vs the absint bracket\n\
     \x20 verify      FILE [--against FILE2]       SAT equivalence of imported\n\
     \x20                                          netlists (alone: vs exact)\n"
        .to_string()
}

fn list() -> String {
    let mut out = String::from("architectures:\n");
    for (_, name, what) in ALL {
        out.push_str(&format!("  {name:<10} {what}\n"));
    }
    out
}

fn generate(opts: &Opts) -> Result<String, CliError> {
    let arch = opts.arch()?;
    let bits = opts.bits()?;
    let nl = arch.netlist(bits)?;
    let rtl = match opts.get("format").unwrap_or("verilog") {
        "verilog" | "v" => to_verilog(&nl),
        "vhdl" | "vhd" => to_vhdl(&nl),
        other => {
            return Err(CliError::Usage(format!(
                "unknown format `{other}` (verilog|vhdl)"
            )))
        }
    };
    if let Some(path) = opts.get("o") {
        std::fs::write(path, &rtl)?;
        Ok(format!(
            "wrote {path}: {} ({} LUTs, {} CARRY4s)\n",
            nl.name(),
            nl.lut_count(),
            nl.carry4_count()
        ))
    } else {
        Ok(rtl)
    }
}

fn characterize(opts: &Opts) -> Result<String, CliError> {
    let arch = opts.arch()?;
    let bits = opts.bits()?;
    let nl = arch.netlist(bits)?;
    let area = AreaReport::of(&nl);
    let delay = DelayModel::virtex7();
    let timing = analyze(&nl, &delay);
    let stim = uniform_stimulus(&nl, 2000, 0xDAC18);
    let energy =
        measure(&nl, &EnergyModel::virtex7(), &delay, &stim).expect("generated netlists simulate");
    Ok(format!(
        "{} at {bits}x{bits}\n  area:   {area}\n  timing: {timing}\n  \
         energy: {:.3} units/op, EDP {:.3}\n",
        arch, energy.energy_per_op, energy.edp
    ))
}

fn stats(opts: &Opts) -> Result<String, CliError> {
    let arch = opts.arch()?;
    let bits = opts.bits()?;
    let m = arch.behavioral(bits)?;
    let s = if m.a_bits() + m.b_bits() <= 24 {
        ErrorStats::exhaustive(&m)
    } else {
        let samples = opts.get("samples").map_or(Ok(1_000_000u64), |v| {
            v.parse()
                .map_err(|_| CliError::Usage(format!("bad --samples `{v}`")))
        })?;
        ErrorStats::sampled(&m, samples, 7)
    };
    Ok(format!(
        "{s}\n  error probability {:.6}, NMED {:.3e}\n",
        s.error_probability, s.normalized_mean_error_distance
    ))
}

fn smooth(opts: &Opts) -> Result<String, CliError> {
    let arch = opts.arch()?;
    let m = arch.behavioral(8)?;
    let img: Image = match opts.get("input") {
        Some(path) => std::fs::read_to_string(path)?.parse()?,
        None => {
            let w = opts.get("width").map_or(Ok(128), |v| {
                v.parse()
                    .map_err(|_| CliError::Usage(format!("bad --width `{v}`")))
            })?;
            let h = opts.get("height").map_or(Ok(128), |v| {
                v.parse()
                    .map_err(|_| CliError::Usage(format!("bad --height `{v}`")))
            })?;
            synthetic_test_image(w, h, 11)
        }
    };
    let params = SusanParams::default();
    let out = susan_smooth(&img, &params, &m);
    let golden = susan_smooth(&img, &params, &axmul_core::Exact::new(8, 8));
    let psnr = golden.psnr(&out);
    let mut msg = format!(
        "smoothed {}x{} with {}: PSNR vs exact datapath = {psnr:.2} dB\n",
        img.width(),
        img.height(),
        m.name()
    );
    if let Some(path) = opts.get("o") {
        std::fs::write(path, out.to_pgm())?;
        msg.push_str(&format!("wrote {path}\n"));
    }
    Ok(msg)
}

fn parse_num<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, CliError> {
    opts.get(key).map_or(Ok(default), |v| {
        v.parse()
            .map_err(|_| CliError::Usage(format!("bad --{key} `{v}`")))
    })
}

fn dse(opts: &Opts) -> Result<String, CliError> {
    use axmul_dse::{run, text_report, to_csv, DseOptions, Strategy};

    let bits: u32 = parse_num(opts, "width", 8)?;
    if !matches!(bits, 4 | 8 | 16) {
        return Err(CliError::Usage(format!(
            "--width must be 4, 8 or 16 (got {bits})"
        )));
    }
    let mut dse_opts = DseOptions::exhaustive_8x8();
    dse_opts.bits = bits;
    dse_opts.workers = parse_num(opts, "workers", dse_opts.workers)?;
    if dse_opts.workers == 0 {
        return Err(CliError::Usage("--workers must be > 0".to_string()));
    }
    let seed: u64 = parse_num(opts, "seed", 0xDAC18)?;
    let budget: usize = parse_num(opts, "budget", 200)?;
    let restarts: usize = parse_num(opts, "restarts", 8)?;
    let default_strategy = if bits <= 8 { "exhaustive" } else { "hill" };
    dse_opts.strategy = match opts.get("strategy").unwrap_or(default_strategy) {
        "exhaustive" => {
            if bits > 8 {
                return Err(CliError::Usage(format!(
                    "exhaustive enumeration is infeasible at {bits} bits; \
                     use --strategy random or hill"
                )));
            }
            Strategy::Exhaustive
        }
        "random" => Strategy::Random { budget, seed },
        "hill" => Strategy::HillClimb {
            budget,
            restarts,
            seed,
        },
        other => {
            return Err(CliError::Usage(format!(
                "unknown strategy `{other}` (exhaustive|random|hill)"
            )))
        }
    };

    let result = run(&dse_opts)?;
    let mut out = text_report(&result);
    if let Some(dir) = opts.get("out-dir") {
        std::fs::create_dir_all(dir)?;
        let path = format!("{dir}/dse_{bits}x{bits}.csv");
        std::fs::write(&path, to_csv(&result))?;
        out.push_str(&format!("wrote {path} ({} rows)\n", result.reports.len()));
    }
    Ok(out)
}

/// Static error/range analysis — no simulation anywhere in this path.
/// With `--config KEY` the abstract interpreter walks the
/// configuration tree and reports sound worst-case-error brackets plus
/// a verified certificate; with `--arch A` it propagates known bits
/// through the elaborated netlist and reports proven output ranges.
fn absint(opts: &Opts) -> Result<String, CliError> {
    use axmul_dse::{static_bounds, Config};

    if let Some(key) = opts.get("config") {
        let cfg: Config = key
            .parse()
            .map_err(|e: axmul_dse::ParseConfigError| CliError::Usage(e.to_string()))?;
        let a = static_bounds(&cfg).map_err(|e| CliError::Usage(e.to_string()))?;
        if opts.flag("json") {
            return Ok(format!("{}\n", a.to_json()));
        }
        let b = &a.bound;
        let verdict = match a.certificate.verify() {
            Ok(()) => "VERIFIED".to_string(),
            Err(e) => format!("FAILED ({e})"),
        };
        let mut out = format!(
            "static analysis of {} at {}x{}\n  \
             worst-case error: in [{}, {}] (deviation interval [{}, {}])\n  \
             max relative error: <= {:.6}\n  \
             output value: in [{}, {}]\n",
            a.key,
            a.bits,
            a.bits,
            b.wce_lb,
            b.wce_ub(),
            b.err_lo,
            b.err_hi,
            b.mre,
            b.value.lo,
            b.value.hi
        );
        if let Some((wa, wb)) = b.witness {
            out.push_str(&format!(
                "  witness: {wa} x {wb} deviates by at least {}\n",
                b.wce_lb
            ));
        }
        out.push_str(&format!(
            "  certificate: {} steps, {verdict}\n",
            a.certificate.steps().len()
        ));
        return Ok(out);
    }

    let arch = opts.arch()?;
    let bits = opts.bits()?;
    let nl = arch.netlist(bits)?;
    let a = axmul_absint::analyze_netlist(&nl);
    if opts.flag("json") {
        return Ok(format!("{}\n", a.to_json()));
    }
    let mut out = format!("static analysis of {} ({})\n", arch, a.name);
    for o in &a.outputs {
        out.push_str(&format!(
            "  output {}: in [{}, {}]\n",
            o.bus, o.interval.lo, o.interval.hi
        ));
    }
    out.push_str(&format!(
        "  derived constant nets: {}\n",
        a.derived_constants.len()
    ));
    if let Some(e) = &a.error {
        out.push_str(&format!(
            "  worst-case deviation: <= {} (interval [{}, {}])\n",
            e.wce_ub(),
            e.err_lo,
            e.err_hi
        ));
    }
    Ok(out)
}

fn nn(opts: &Opts) -> Result<String, CliError> {
    use axmul_nn::{
        accuracy_search, evaluate, quick_candidates, reference_model, test_set, ProductTable,
    };

    let workers: usize = parse_num(opts, "workers", 2)?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be > 0".to_string()));
    }
    let quick = opts.flag("quick");
    let mut dataset = test_set();
    if quick {
        dataset.images.truncate(64);
        dataset.labels.truncate(64);
    }
    let model = reference_model();
    let mut out = format!(
        "int8 inference: {} test samples, {} MACs/inference, {} classes\n",
        dataset.len(),
        model.macs_per_inference(),
        model.classes()
    );

    if opts.flag("dse") {
        let floor: f64 = parse_num(opts, "floor", 0.95)?;
        if !(0.0..=1.0).contains(&floor) {
            return Err(CliError::Usage(format!(
                "--floor must be in [0, 1] (got {floor})"
            )));
        }
        let configs = quick.then(quick_candidates);
        let search = accuracy_search(model, &dataset, floor, workers, configs)?;
        out.push_str(&format!(
            "accuracy-floor search: {} configs, floor {:.1}% of baseline\n\
             baseline {:>12}  {:>4} LUTs  accuracy {:.2}%\n",
            search.points.len(),
            floor * 100.0,
            search.baseline.key,
            search.baseline.luts,
            search.baseline.accuracy * 100.0
        ));
        match &search.best {
            Some(best) => out.push_str(&format!(
                "best     {:>12}  {:>4} LUTs  accuracy {:.2}%  (rmse {:.1})\n",
                best.key,
                best.luts,
                best.accuracy * 100.0,
                best.rmse
            )),
            None => out.push_str("no configuration met the floor below baseline LUTs\n"),
        }
        return Ok(out);
    }

    let archs: Vec<(&str, Arch)> = if opts.flag("all") {
        ALL.iter()
            .filter(|(a, _, _)| a.behavioral(8).is_ok())
            .map(|(a, name, _)| (*name, *a))
            .collect()
    } else {
        let arch = opts.arch()?;
        let name = ALL
            .iter()
            .find(|(a, _, _)| *a == arch)
            .map_or("?", |(_, n, _)| n);
        vec![(name, arch)]
    };
    let exact = evaluate(model, &ProductTable::exact(), &dataset, workers)?;
    out.push_str(&format!(
        "{:<10} {:<14} accuracy {:6.2}%  ({}/{})\n",
        "exact",
        "reference",
        exact.accuracy() * 100.0,
        exact.correct,
        exact.total
    ));
    for (name, arch) in archs {
        let mult = arch.behavioral(8)?;
        let table = ProductTable::new(mult.as_ref())?;
        let eval = evaluate(model, &table, &dataset, workers)?;
        out.push_str(&format!(
            "{:<10} {:<14} accuracy {:6.2}%  ({}/{})\n",
            name,
            mult.name(),
            eval.accuracy() * 100.0,
            eval.correct,
            eval.total
        ));
    }
    Ok(out)
}

/// Starts the characterization-and-inference daemon. Blocks until
/// killed, or for `--duration-s` seconds when given (used by smoke
/// tests and CI). With no endpoint flag it listens on TCP port 7878.
fn serve(opts: &Opts) -> Result<String, CliError> {
    use axmul_serve::server::{serve, Endpoints, ServerOptions};
    use axmul_serve::{open_store, Service};

    let tcp_port: Option<u16> = opts
        .get("port")
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::Usage(format!("bad --port `{v}`")))
        })
        .transpose()?;
    let unix_path = opts.get("socket").map(std::path::PathBuf::from);
    let endpoints = Endpoints {
        // Default endpoint when neither flag is given.
        tcp_port: if tcp_port.is_none() && unix_path.is_none() {
            Some(7878)
        } else {
            tcp_port
        },
        unix_path,
    };
    let workers: usize = parse_num(opts, "workers", 4)?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be > 0".to_string()));
    }
    let duration_s: Option<f64> = opts
        .get("duration-s")
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::Usage(format!("bad --duration-s `{v}`")))
        })
        .transpose()?;

    let cache_dir = opts.get("cache-dir").map(std::path::PathBuf::from);
    let store = open_store(cache_dir.as_deref())
        .map_err(|e| CliError::Io(std::io::Error::other(e.to_string())))?;
    let cache_desc = axmul_serve::storage::describe(&store);
    let service = Service::new(Some(store));
    let handle = serve(
        service,
        &endpoints,
        &ServerOptions {
            workers,
            ..ServerOptions::default()
        },
    )?;

    let mut banner = String::from("axmul serve: listening on");
    if let Some(addr) = handle.tcp_addr() {
        banner.push_str(&format!(" tcp://{addr}"));
    }
    if let Some(path) = handle.unix_path() {
        banner.push_str(&format!(" unix://{}", path.display()));
    }
    banner.push_str(&format!("\n  cache: {cache_desc}\n  workers: {workers}\n"));

    match duration_s {
        Some(secs) => {
            eprint!("{banner}");
            std::thread::sleep(std::time::Duration::from_secs_f64(secs.max(0.0)));
            let served = handle.connections();
            handle.shutdown();
            Ok(format!(
                "{banner}stopped after {secs}s: {served} connection(s) served\n"
            ))
        }
        None => {
            // Daemon mode: print the banner immediately and block for
            // the life of the process.
            eprint!("{banner}");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
}

/// Reads a netlist interchange document (structural Verilog or
/// `axnl-v1` JSON) back into a validated netlist and reports on it.
/// `--lint`, `--absint` and `--characterize` chain the imported design
/// straight into the respective analyses; `--json` re-emits it as an
/// `axnl-v1` document (`-o` writes it to a file instead of stdout).
fn import(file: &str, opts: &Opts) -> Result<String, CliError> {
    let text = std::fs::read_to_string(file)?;
    let netlist = match opts.get("format") {
        None => axmul_netio::import(&text)?,
        Some(f) => match f.parse::<axmul_netio::Format>() {
            Ok(axmul_netio::Format::Verilog) => axmul_netio::from_verilog(&text)?,
            Ok(axmul_netio::Format::Axnl) => axmul_netio::from_axnl(&text)?,
            Err(()) => {
                return Err(CliError::Usage(format!(
                    "unknown format `{f}` (verilog|axnl)"
                )))
            }
        },
    };

    if opts.flag("json") {
        let doc = axmul_netio::to_axnl(&netlist);
        return if let Some(path) = opts.get("o") {
            std::fs::write(path, &doc)?;
            Ok(format!("wrote {path}: {} as axnl-v1\n", netlist.name()))
        } else {
            Ok(doc)
        };
    }

    let mut out = format!(
        "imported {} from {file} ({})\n  {} LUTs, {} CARRY4s, {} nets, fingerprint {:016x}\n",
        netlist.name(),
        axmul_netio::detect_format(&text).name(),
        netlist.lut_count(),
        netlist.carry4_count(),
        netlist.drivers().len(),
        axmul_netio::fingerprint(&netlist),
    );
    for (name, bits) in netlist.input_buses() {
        out.push_str(&format!("  input  {name}[{}:0]\n", bits.len() - 1));
    }
    for (name, bits) in netlist.output_buses() {
        out.push_str(&format!("  output {name}[{}:0]\n", bits.len() - 1));
    }

    if opts.flag("verify") {
        out.push_str(&verify_imported(&netlist, opts)?);
    }
    if opts.flag("lint") {
        let report = axmul_lint::Linter::new().lint(&netlist);
        out.push_str(&report.to_string());
    }
    if opts.flag("absint") {
        let a = axmul_absint::analyze_netlist(&netlist);
        for o in &a.outputs {
            out.push_str(&format!(
                "  absint output {}: in [{}, {}]\n",
                o.bus, o.interval.lo, o.interval.hi
            ));
        }
    }
    if opts.flag("characterize") {
        let area = AreaReport::of(&netlist);
        let delay = DelayModel::virtex7();
        let timing = analyze(&netlist, &delay);
        let stim = uniform_stimulus(&netlist, 2000, 0xDAC18);
        let energy = measure(&netlist, &EnergyModel::virtex7(), &delay, &stim)?;
        out.push_str(&format!(
            "  area:   {area}\n  timing: {timing}\n  energy: {:.3} units/op, EDP {:.3}\n",
            energy.energy_per_op, energy.edp
        ));
    }
    if let Some(path) = opts.get("o") {
        std::fs::write(path, &out)?;
        return Ok(format!("wrote {path}\n"));
    }
    Ok(out)
}

fn parse_config(key: &str) -> Result<axmul_dse::Config, CliError> {
    key.parse()
        .map_err(|e: axmul_dse::ParseConfigError| CliError::Usage(e.to_string()))
}

/// `import FILE --verify --config KEY`: SAT-proves the imported
/// netlist semantically equal to the configuration's own elaboration.
/// Unlike the content fingerprint, this accepts structural variants —
/// a fingerprint mismatch between semantically-equal netlists is
/// reported as a note, not a rejection.
fn verify_imported(netlist: &axmul_fabric::Netlist, opts: &Opts) -> Result<String, CliError> {
    use axmul_sat::{check_equiv, EquivOutcome, ProofOptions};

    let Some(key) = opts.get("config") else {
        return Err(CliError::Usage(
            "--verify needs a --config KEY to verify against".into(),
        ));
    };
    let golden = parse_config(key)?.assemble();
    let report = check_equiv(netlist, &golden, &ProofOptions::default())?;
    match report.outcome {
        EquivOutcome::Equivalent => {
            let mut out = format!(
                "  verify: EQUIVALENT to `{key}` for all inputs ({})\n",
                if report.structural {
                    "structurally identical".to_string()
                } else {
                    format!("UNSAT miter, {} conflicts", report.stats.conflicts)
                }
            );
            if axmul_netio::fingerprint(netlist) != axmul_netio::fingerprint(&golden) {
                out.push_str(
                    "  verify: note: content fingerprints differ — structural variants \
                     of the same function\n",
                );
            }
            Ok(out)
        }
        EquivOutcome::NotEquivalent(cex) => {
            let inputs: Vec<String> = cex.inputs.iter().map(|(n, v)| format!("{n}={v}")).collect();
            Err(CliError::Verify(format!(
                "imported netlist differs from `{key}`: at {} it yields {:?} vs {:?} \
                 (counterexample confirmed by replay)\n",
                inputs.join(" "),
                cex.lhs_outputs,
                cex.rhs_outputs
            )))
        }
    }
}

/// `verify --config KEY | --arch A [--bits N]`: SAT-proves the design's
/// *exact* worst-case error and checks the proven value against the
/// absint bracket — certifying the static analysis (or refuting it,
/// which would be a soundness bug worth a hard failure).
fn verify(opts: &Opts) -> Result<String, CliError> {
    use axmul_sat::{prove_wce, WceOptions};

    let (netlist, name, bracket) = if let Some(key) = opts.get("config") {
        let cfg = parse_config(key)?;
        let analysis =
            axmul_dse::static_bounds(&cfg).map_err(|e| CliError::Usage(e.to_string()))?;
        let b = &analysis.bound;
        (
            cfg.assemble(),
            analysis.key.clone(),
            Some((b.wce_lb, b.wce_ub(), b.witness)),
        )
    } else {
        let arch = opts.arch()?;
        let bits = opts.bits()?;
        let nl = arch.netlist(bits)?;
        let a = axmul_absint::analyze_netlist(&nl);
        let bracket = a.error.as_ref().map(|e| (e.wce_lb, e.wce_ub(), e.witness));
        (nl, format!("{arch} {bits}x{bits}"), bracket)
    };
    let wce_opts = WceOptions {
        hint: bracket.and_then(|(_, _, w)| w),
        ..WceOptions::default()
    };
    let proof = prove_wce(&netlist, &wce_opts)?;
    let contained = bracket.is_none_or(|(lb, ub, _)| lb <= proof.wce && proof.wce <= ub);
    if opts.flag("json") {
        let (lb, ub) = bracket.map_or((0, u128::MAX), |(lb, ub, _)| (lb, ub));
        return Ok(format!(
            "{{\"name\":\"{}\",\"a_bits\":{},\"b_bits\":{},\"wce\":{},\
             \"witness\":[{},{}],\"absint_lb\":{lb},\"absint_ub\":{ub},\
             \"contained\":{contained},\"ascent_steps\":{},\"solves\":{},\
             \"conflicts\":{},\"elapsed_ms\":{:.3}}}\n",
            name,
            proof.a_bits,
            proof.b_bits,
            proof.wce,
            proof.witness.0,
            proof.witness.1,
            proof.ascent_steps,
            proof.stats.solves,
            proof.stats.conflicts,
            proof.stats.elapsed_ms,
        ));
    }
    let mut out = format!(
        "SAT worst-case-error proof for {name} at {}x{}\n  \
         exact wce: {} (witness {} x {}, confirmed by replay)\n  \
         proof: {} solve(s), {} conflicts, {} ascent step(s), {:.1} ms\n",
        proof.a_bits,
        proof.b_bits,
        proof.wce,
        proof.witness.0,
        proof.witness.1,
        proof.stats.solves,
        proof.stats.conflicts,
        proof.ascent_steps,
        proof.stats.elapsed_ms,
    );
    match bracket {
        Some((lb, ub, _)) => {
            out.push_str(&format!(
                "  absint bracket: [{lb}, {ub}] — {}\n",
                if contained {
                    "CERTIFIED (proven value inside the sound bracket)"
                } else {
                    "REFUTED (static analysis is unsound!)"
                }
            ));
        }
        None => out.push_str("  absint bracket: unavailable for this shape\n"),
    }
    if !contained {
        return Err(CliError::Verify(out));
    }
    Ok(out)
}

/// `verify FILE [--against FILE2 | --config KEY]`: SAT equivalence of
/// an imported netlist against a second file, a configuration twin, or
/// — with no reference — the exact product contract.
fn verify_file(file: &str, opts: &Opts) -> Result<String, CliError> {
    use axmul_sat::{check_against_exact, check_equiv, EquivOutcome, ProofOptions};

    let lhs = axmul_netio::import(&std::fs::read_to_string(file)?)?;
    let popts = ProofOptions::default();
    let (report, reference) = match (opts.get("against"), opts.get("config")) {
        (Some(file2), _) => {
            let rhs = axmul_netio::import(&std::fs::read_to_string(file2)?)?;
            (
                check_equiv(&lhs, &rhs, &popts)?,
                format!("`{}` ({file2})", rhs.name()),
            )
        }
        (None, Some(key)) => {
            let rhs = parse_config(key)?.assemble();
            (check_equiv(&lhs, &rhs, &popts)?, format!("`{key}`"))
        }
        (None, None) => (
            check_against_exact(&lhs, &popts)?,
            "the exact product".to_string(),
        ),
    };
    match report.outcome {
        EquivOutcome::Equivalent => Ok(format!(
            "EQUIVALENT: `{}` matches {reference} for all inputs ({})\n",
            lhs.name(),
            if report.structural {
                "structurally identical — discharged without solving".to_string()
            } else {
                format!(
                    "UNSAT miter, {} conflicts in {:.1} ms",
                    report.stats.conflicts, report.stats.elapsed_ms
                )
            }
        )),
        EquivOutcome::NotEquivalent(cex) => {
            let inputs: Vec<String> = cex.inputs.iter().map(|(n, v)| format!("{n}={v}")).collect();
            Err(CliError::Verify(format!(
                "NOT EQUIVALENT: `{}` differs from {reference} at {}: {:?} vs {:?} \
                 (counterexample confirmed by replay)\n",
                lhs.name(),
                inputs.join(" "),
                cex.lhs_outputs,
                cex.rhs_outputs
            )))
        }
    }
}

/// Warnings a design is *expected* to carry: the K baseline's deleted
/// kernel bit leaves a provably-constant summation LUT, and the
/// VivadoIP emulations reproduce the IP's wasteful mapping on purpose
/// (the paper's motivation). Mirrors the allowance of the bench crate's
/// `repro lint` experiment; everything else must be warning-free under
/// `--deny warnings`.
fn allowed_waste(arch: Arch, code: &str) -> bool {
    match arch {
        Arch::Kulkarni => code == "const-lut",
        Arch::IpArea | Arch::IpSpeed => {
            matches!(code, "const-lut" | "stuck-carry" | "unreachable-cell")
        }
        _ => false,
    }
}

fn lint(opts: &Opts) -> Result<String, CliError> {
    use axmul_lint::{Linter, Severity};

    let deny_warnings = match opts.get("deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "bad --deny `{other}` (only `warnings`)"
            )))
        }
    };
    let targets: Vec<Arch> = if opts.flag("all") {
        ALL.iter().map(|(a, _, _)| *a).collect()
    } else {
        vec![opts.arch()?]
    };
    let linter = Linter::new();
    let mut text = String::new();
    let mut jsons = Vec::new();
    let (mut errors, mut denied) = (0usize, 0usize);
    for arch in targets {
        let bits = match arch {
            Arch::Approx4x4 | Arch::Approx4x2 => 4,
            _ => opts.bits()?,
        };
        let nl = arch.netlist(bits)?;
        // `truncated` pairs the paper's product-zeroing behavioral model
        // with the PP-dropping hardware idiom, so only the structural
        // passes apply there (see docs/modeling-notes.md).
        let mut report = if arch == Arch::Truncated {
            linter.lint(&nl)
        } else {
            linter.lint_against(&nl, arch.behavioral(bits)?.as_ref())
        };
        report.netlist = format!("{arch} ({})", nl.name());
        errors += report.errors();
        if deny_warnings {
            denied += report
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Warning && !allowed_waste(arch, d.code))
                .count();
        }
        if opts.flag("json") {
            jsons.push(report.to_json());
        } else {
            text.push_str(&report.to_string());
        }
    }
    let out = if opts.flag("json") {
        format!("[{}]\n", jsons.join(","))
    } else {
        text.push_str(&format!(
            "lint verdict: {} ({errors} error(s), {denied} denied warning(s))\n",
            if errors == 0 && denied == 0 {
                "PASS"
            } else {
                "FAIL"
            }
        ));
        text
    };
    if errors > 0 || denied > 0 {
        return Err(CliError::Lint(out));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        run(&v)
    }

    #[test]
    fn list_shows_every_arch() {
        let out = run_str(&["list"]).unwrap();
        for (_, name, _) in ALL {
            assert!(out.contains(name), "{name} missing:\n{out}");
        }
    }

    #[test]
    fn generate_verilog_to_stdout() {
        let out = run_str(&["generate", "--arch", "ca", "--bits", "8"]).unwrap();
        assert!(out.contains("module"));
        assert!(out.contains("LUT6_2"));
        assert_eq!(out.matches("LUT6_2 #").count(), 57);
    }

    #[test]
    fn generate_vhdl() {
        let out = run_str(&[
            "generate",
            "--arch",
            "approx4x4",
            "--bits",
            "4",
            "--format",
            "vhdl",
        ])
        .unwrap();
        assert!(out.contains("entity"));
        assert!(out.contains("UNISIM"));
    }

    #[test]
    fn characterize_reports_area_and_timing() {
        let out = run_str(&["characterize", "--arch", "cc", "--bits", "8"]).unwrap();
        assert!(out.contains("56 LUTs"));
        assert!(out.contains("critical path"));
        assert!(out.contains("EDP"));
    }

    #[test]
    fn stats_exhaustive_for_8_bits() {
        let out = run_str(&["stats", "--arch", "k", "--bits", "8"]).unwrap();
        assert!(out.contains("14450"), "{out}");
        assert!(out.contains("30625"), "{out}");
    }

    #[test]
    fn smooth_synthetic() {
        let out = run_str(&["smooth", "--arch", "ca", "--width", "32", "--height", "24"]).unwrap();
        assert!(out.contains("PSNR"));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(matches!(run_str(&["generate"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_str(&["generate", "--arch", "nope"]),
            Err(CliError::Arch(_))
        ));
        assert!(matches!(
            run_str(&["generate", "--arch", "ca", "--bits", "9"]),
            Err(CliError::Width(_))
        ));
        assert!(matches!(run_str(&["frobnicate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn dse_4x4_exhaustive_reports_fronts() {
        // The 4x4 space is just the five leaves — fast enough for a
        // real end-to-end run in a unit test.
        let out = run_str(&["dse", "--width", "4", "--workers", "2"]).unwrap();
        assert!(out.contains("5 candidates at 4x4"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        assert!(out.contains("cand/s"), "{out}");
        assert!(out.contains("error/LUT Pareto front"), "{out}");
    }

    #[test]
    fn dse_random_writes_csv() {
        let dir = std::env::temp_dir().join("axmul_dse_cli_test");
        let dir_s = dir.to_str().unwrap();
        let out = run_str(&[
            "dse",
            "--width",
            "8",
            "--strategy",
            "random",
            "--budget",
            "6",
            "--seed",
            "3",
            "--out-dir",
            dir_s,
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let csv = std::fs::read_to_string(dir.join("dse_8x8.csv")).unwrap();
        assert!(csv.starts_with("key,bits,luts"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dse_usage_errors() {
        assert!(matches!(
            run_str(&["dse", "--width", "12"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["dse", "--width", "16", "--strategy", "exhaustive"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["dse", "--strategy", "simulated-annealing"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["dse", "--workers", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn absint_config_reports_exact_bracket_for_paper_ca() {
        let out = run_str(&["absint", "--config", "(a A A A A)"]).unwrap();
        assert!(out.contains("8x8"), "{out}");
        assert!(out.contains("worst-case error: in [2312, 2312]"), "{out}");
        assert!(out.contains("witness: 119 x 102"), "{out}");
        assert!(out.contains("VERIFIED"), "{out}");
    }

    #[test]
    fn absint_config_json_is_sound_at_16_bits() {
        let key = "(c (a A A A A) (a A A A A) (a A A A A) (a A A A A))";
        let out = run_str(&["absint", "--config", key, "--json"]).unwrap();
        assert!(out.contains("\"bits\":16"), "{out}");
        assert!(out.contains("\"sound\":true"), "{out}");
    }

    #[test]
    fn absint_arch_reports_output_range() {
        let out = run_str(&["absint", "--arch", "truncated", "--bits", "8"]).unwrap();
        assert!(out.contains("output"), "{out}");
        assert!(out.contains("worst-case deviation"), "{out}");
    }

    #[test]
    fn absint_usage_errors() {
        assert!(matches!(run_str(&["absint"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_str(&["absint", "--config", "(q A A A A)"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn lint_single_arch_passes() {
        let out = run_str(&["lint", "--arch", "ca", "--bits", "8"]).unwrap();
        assert!(out.contains("0 error(s)"), "{out}");
        assert!(out.contains("equiv-verified"), "{out}");
        assert!(out.contains("lint verdict: PASS"), "{out}");
    }

    #[test]
    fn lint_all_deny_warnings_is_the_ci_gate() {
        let out = run_str(&["lint", "--all", "--deny", "warnings"]).unwrap();
        assert!(
            out.contains("lint verdict: PASS (0 error(s), 0 denied warning(s))"),
            "{out}"
        );
        for (_, name, _) in ALL {
            assert!(
                out.contains(&format!("lint `{name} (")),
                "{name} missing:\n{out}"
            );
        }
    }

    #[test]
    fn lint_json_emits_report_array() {
        let out = run_str(&["lint", "--arch", "approx4x4", "--json"]).unwrap();
        assert!(out.starts_with('['), "{out}");
        assert!(out.contains("\"errors\":0"), "{out}");
        assert!(out.contains("\"code\":\"equiv-verified\""), "{out}");
    }

    #[test]
    fn lint_usage_errors() {
        assert!(matches!(run_str(&["lint"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_str(&["lint", "--arch", "ca", "--deny", "infos"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn default_bits_is_8() {
        let out = run_str(&["characterize", "--arch", "ca"]).unwrap();
        assert!(out.contains("8x8"));
        assert!(out.contains("57 LUTs"));
    }

    #[test]
    fn nn_quick_reports_exact_and_requested_arch() {
        let out = run_str(&["nn", "--arch", "ca", "--quick"]).unwrap();
        assert!(out.contains("64 test samples"), "{out}");
        assert!(out.contains("2096 MACs/inference"), "{out}");
        assert!(out.contains("exact"), "{out}");
        assert!(out.contains("Ca 8x8"), "{out}");
    }

    #[test]
    fn nn_dse_quick_finds_a_sub_baseline_config() {
        let out = run_str(&["nn", "--dse", "--quick"]).unwrap();
        assert!(out.contains("baseline"), "{out}");
        assert!(out.contains("(a X X X X)"), "{out}");
        assert!(out.contains("best"), "{out}");
    }

    #[test]
    fn serve_duration_mode_starts_and_stops() {
        let dir = std::env::temp_dir().join("axmul_cli_serve_test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = run_str(&[
            "serve",
            "--port",
            "0",
            "--duration-s",
            "0.2",
            "--cache-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("listening on tcp://127.0.0.1:"), "{out}");
        assert!(out.contains("connection(s) served"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_usage_errors() {
        assert!(matches!(
            run_str(&["serve", "--port", "notaport"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["serve", "--workers", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["serve", "--duration-s", "soon"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn nn_usage_errors() {
        assert!(matches!(
            run_str(&["nn", "--workers", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["nn", "--dse", "--floor", "1.5"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn import_round_trips_generated_verilog() {
        let dir = std::env::temp_dir().join("axmul_cli_import_test");
        std::fs::create_dir_all(&dir).unwrap();
        let vfile = dir.join("ca8.v");
        run_str(&[
            "generate",
            "--arch",
            "ca",
            "--bits",
            "8",
            "-o",
            vfile.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_str(&["import", vfile.to_str().unwrap()]).unwrap();
        assert!(out.contains("(verilog)"), "{out}");
        assert!(out.contains("57 LUTs"), "{out}");
        assert!(out.contains("fingerprint"), "{out}");
        assert!(out.contains("input  a[7:0]"), "{out}");
        assert!(out.contains("output p[15:0]"), "{out}");

        // Re-emit as axnl-v1, import that back, and check it lints clean.
        let jfile = dir.join("ca8.axnl");
        let wrote = run_str(&[
            "import",
            vfile.to_str().unwrap(),
            "--json",
            "-o",
            jfile.to_str().unwrap(),
        ])
        .unwrap();
        assert!(wrote.contains("axnl-v1"), "{wrote}");
        let out2 = run_str(&["import", jfile.to_str().unwrap(), "--lint"]).unwrap();
        assert!(out2.contains("(axnl)"), "{out2}");
        assert!(out2.contains("0 error(s)"), "{out2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_chains_absint_and_characterize() {
        let dir = std::env::temp_dir().join("axmul_cli_import_chain_test");
        std::fs::create_dir_all(&dir).unwrap();
        let vfile = dir.join("trunc8.v");
        run_str(&[
            "generate",
            "--arch",
            "truncated",
            "--bits",
            "8",
            "-o",
            vfile.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_str(&[
            "import",
            vfile.to_str().unwrap(),
            "--absint",
            "--characterize",
        ])
        .unwrap();
        assert!(out.contains("absint output"), "{out}");
        assert!(out.contains("critical path"), "{out}");
        assert!(out.contains("EDP"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_config_certifies_paper_ca_bracket() {
        // absint pins (a A A A A) to exactly [2312, 2312]; the SAT
        // proof must land on the same number and certify it.
        let out = run_str(&["verify", "--config", "(a A A A A)"]).unwrap();
        assert!(out.contains("exact wce: 2312"), "{out}");
        assert!(out.contains("CERTIFIED"), "{out}");
    }

    #[test]
    fn verify_arch_json_has_machine_fields() {
        let out = run_str(&["verify", "--arch", "k", "--bits", "4", "--json"]).unwrap();
        assert!(out.contains("\"wce\":"), "{out}");
        assert!(out.contains("\"contained\":true"), "{out}");
        assert!(out.contains("\"witness\":"), "{out}");
    }

    #[test]
    fn verify_file_equivalence_and_refutation() {
        let dir = std::env::temp_dir().join("axmul_cli_verify_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ca = dir.join("ca8.v");
        let k = dir.join("k8.v");
        run_str(&[
            "generate",
            "--arch",
            "ca",
            "--bits",
            "8",
            "-o",
            ca.to_str().unwrap(),
        ])
        .unwrap();
        run_str(&[
            "generate",
            "--arch",
            "k",
            "--bits",
            "8",
            "-o",
            k.to_str().unwrap(),
        ])
        .unwrap();

        // A file against itself: equivalent, discharged structurally.
        let out = run_str(&[
            "verify",
            ca.to_str().unwrap(),
            "--against",
            ca.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("EQUIVALENT"), "{out}");
        assert!(out.contains("structurally identical"), "{out}");

        // Ca vs K differ; the refutation carries a counterexample.
        let err = run_str(&[
            "verify",
            ca.to_str().unwrap(),
            "--against",
            k.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Verify(_)), "{err}");
        assert!(err.to_string().contains("NOT EQUIVALENT"), "{err}");

        // An approximate multiplier is not the exact product.
        let err = run_str(&["verify", ca.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Verify(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_verify_proves_config_twin() {
        let dir = std::env::temp_dir().join("axmul_cli_import_verify_test");
        std::fs::create_dir_all(&dir).unwrap();
        let vfile = dir.join("ca8.v");
        run_str(&[
            "generate",
            "--arch",
            "ca",
            "--bits",
            "8",
            "-o",
            vfile.to_str().unwrap(),
        ])
        .unwrap();
        let out = run_str(&[
            "import",
            vfile.to_str().unwrap(),
            "--verify",
            "--config",
            "(a A A A A)",
        ])
        .unwrap();
        assert!(out.contains("verify: EQUIVALENT"), "{out}");

        // The wrong twin is refuted, not fingerprint-rejected.
        let err = run_str(&[
            "import",
            vfile.to_str().unwrap(),
            "--verify",
            "--config",
            "(a X X X X)",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Verify(_)), "{err}");

        // --verify without a --config twin is a usage error.
        assert!(matches!(
            run_str(&["import", vfile.to_str().unwrap(), "--verify"]),
            Err(CliError::Usage(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_reports_typed_errors() {
        let dir = std::env::temp_dir().join("axmul_cli_import_err_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.v");
        std::fs::write(&bad, "module broken (").unwrap();
        let err = run_str(&["import", bad.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Netio(_)), "{err}");
        assert!(err.to_string().contains("[syntax]"), "{err}");

        assert!(matches!(
            run_str(&["import", bad.to_str().unwrap(), "--format", "edif"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run_str(&["import"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_str(&["import", "--lint"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_str(&["import", dir.join("nope.v").to_str().unwrap()]),
            Err(CliError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
