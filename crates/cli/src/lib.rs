//! # axmul-cli
//!
//! The user-facing generator for the approximate-multiplier library —
//! the role the paper's downloadable HDL archive plays, as a tool:
//!
//! ```text
//! axmul list
//! axmul generate   --arch ca --bits 8 --format verilog -o ca_8x8.v
//! axmul characterize --arch cc --bits 16
//! axmul stats      --arch w --bits 8
//! axmul smooth     --width 128 --height 128 --arch ca -o out.pgm
//! axmul lint       --all --deny warnings
//! axmul serve      --socket /tmp/axmul.sock --cache-dir ~/.cache/axmul
//! ```
//!
//! The library half ([`Arch`], [`run`]) is exposed so the command logic
//! is unit-testable without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod commands;

pub use arch::{Arch, ParseArchError};
pub use commands::{run, CliError};
