//! Architecture registry: one name per design the library ships.

use std::fmt;
use std::str::FromStr;

use axmul_baselines::{
    array_mult_netlist, kulkarni_netlist, rehman_netlist, IpOpt, Kulkarni, RehmanW, Truncated,
    VivadoIp,
};
use axmul_core::behavioral::{Approx4x2, Approx4x4, Ca, Cc};
use axmul_core::structural::{approx_4x2_netlist, approx_4x4_netlist, ca_netlist, cc_netlist};
use axmul_core::{Exact, Multiplier, WidthError};
use axmul_fabric::Netlist;

/// A named multiplier architecture selectable on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Arch {
    /// Proposed recursive design with accurate summation.
    Ca,
    /// Proposed recursive design with carry-free summation.
    Cc,
    /// The elementary proposed 4×4 (bits fixed at 4).
    Approx4x4,
    /// The elementary approximate 4×2 (bits fixed: 4×2).
    Approx4x2,
    /// Kulkarni baseline (K).
    Kulkarni,
    /// Rehman baseline (W).
    Rehman,
    /// Exact array multiplier.
    Array,
    /// Vivado-IP-like accurate multiplier, area-optimized.
    IpArea,
    /// Vivado-IP-like accurate multiplier, speed-optimized.
    IpSpeed,
    /// Product-LSB-truncated multiplier `Mult(bits, bits/2)`.
    Truncated,
}

/// All selectable architectures with their CLI names.
pub const ALL: &[(Arch, &str, &str)] = &[
    (Arch::Ca, "ca", "proposed, accurate summation (Table 4)"),
    (Arch::Cc, "cc", "proposed, carry-free summation (Table 4)"),
    (
        Arch::Approx4x4,
        "approx4x4",
        "elementary 4x4 block (Tables 2-3)",
    ),
    (
        Arch::Approx4x2,
        "approx4x2",
        "elementary 4x2 block (one slice)",
    ),
    (Arch::Kulkarni, "k", "Kulkarni underdesigned multiplier [6]"),
    (
        Arch::Rehman,
        "w",
        "Rehman architectural-space multiplier [19]",
    ),
    (Arch::Array, "array", "exact carry-chain array multiplier"),
    (
        Arch::IpArea,
        "ip-area",
        "accurate IP emulation, area-optimized",
    ),
    (
        Arch::IpSpeed,
        "ip-speed",
        "accurate IP emulation, speed-optimized",
    ),
    (
        Arch::Truncated,
        "truncated",
        "product LSBs zeroed, Mult(n, n/2)",
    ),
];

/// Error parsing an architecture name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArchError {
    /// The rejected name.
    pub name: String,
}

impl fmt::Display for ParseArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown architecture `{}` (try: {})",
            self.name,
            ALL.iter()
                .map(|(_, n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for ParseArchError {}

impl FromStr for Arch {
    type Err = ParseArchError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ALL.iter()
            .find(|(_, n, _)| *n == s.to_ascii_lowercase())
            .map(|(a, _, _)| *a)
            .ok_or_else(|| ParseArchError {
                name: s.to_string(),
            })
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = ALL
            .iter()
            .find(|(a, _, _)| a == self)
            .map_or("?", |(_, n, _)| *n);
        f.write_str(name)
    }
}

impl Arch {
    /// Instantiates the behavioral model at the given width.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] if the architecture does not support the
    /// width (fixed-size elementary blocks reject anything but 4).
    pub fn behavioral(self, bits: u32) -> Result<Box<dyn Multiplier>, WidthError> {
        let fixed = |want: u32| {
            if bits == want {
                Ok(())
            } else {
                Err(WidthError { bits })
            }
        };
        Ok(match self {
            Arch::Ca => Box::new(Ca::new(bits)?) as Box<dyn Multiplier>,
            Arch::Cc => Box::new(Cc::new(bits)?),
            Arch::Approx4x4 => {
                fixed(4)?;
                Box::new(Approx4x4::new())
            }
            Arch::Approx4x2 => {
                fixed(4)?;
                Box::new(Approx4x2::new())
            }
            Arch::Kulkarni => Box::new(Kulkarni::new(bits)?),
            Arch::Rehman => Box::new(RehmanW::new(bits)?),
            Arch::Array | Arch::IpArea | Arch::IpSpeed => {
                check_plain(bits)?;
                Box::new(Exact::new(bits, bits))
            }
            Arch::Truncated => {
                check_plain(bits)?;
                Box::new(Truncated::new(bits, bits / 2))
            }
        })
    }

    /// Builds the structural netlist at the given width.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] on unsupported widths.
    pub fn netlist(self, bits: u32) -> Result<Netlist, WidthError> {
        let fixed = |want: u32| {
            if bits == want {
                Ok(())
            } else {
                Err(WidthError { bits })
            }
        };
        Ok(match self {
            Arch::Ca => ca_netlist(bits)?,
            Arch::Cc => cc_netlist(bits)?,
            Arch::Approx4x4 => {
                fixed(4)?;
                approx_4x4_netlist()
            }
            Arch::Approx4x2 => {
                fixed(4)?;
                approx_4x2_netlist()
            }
            Arch::Kulkarni => kulkarni_netlist(bits)?,
            Arch::Rehman => rehman_netlist(bits)?,
            Arch::Array => {
                check_plain(bits)?;
                array_mult_netlist(bits, bits)
            }
            Arch::IpArea => {
                check_plain(bits)?;
                VivadoIp::new(bits, IpOpt::Area).netlist()
            }
            Arch::IpSpeed => {
                check_plain(bits)?;
                VivadoIp::new(bits, IpOpt::Speed).netlist()
            }
            Arch::Truncated => {
                check_plain(bits)?;
                axmul_baselines::pp_truncated_netlist(bits, bits, bits / 2)
            }
        })
    }
}

fn check_plain(bits: u32) -> Result<(), WidthError> {
    if (2..=24).contains(&bits) {
        Ok(())
    } else {
        Err(WidthError { bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_parses_back() {
        for (arch, name, _) in ALL {
            assert_eq!(name.parse::<Arch>().unwrap(), *arch);
            assert_eq!(arch.to_string(), *name);
        }
        assert!("bogus".parse::<Arch>().is_err());
    }

    #[test]
    fn behavioral_and_netlist_agree_for_every_arch_at_8() {
        for (arch, name, _) in ALL {
            let bits = if matches!(arch, Arch::Approx4x4 | Arch::Approx4x2) {
                4
            } else {
                8
            };
            let m = arch
                .behavioral(bits)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let nl = arch.netlist(bits).unwrap_or_else(|e| panic!("{name}: {e}"));
            // Note: `truncated` pairs the paper's product-zeroing
            // behavioral with the PP-dropping hardware idiom; skip the
            // equivalence check there (documented difference).
            if *arch == Arch::Truncated {
                continue;
            }
            for (a, b) in [(3u64, 5u64), (15, 15), (13, 13), (250, 199)] {
                let (a, b) = (a & ((1 << m.a_bits()) - 1), b & ((1 << m.b_bits()) - 1));
                assert_eq!(
                    nl.eval(&[a, b]).unwrap()[0],
                    m.multiply(a, b),
                    "{name} at {a}x{b}"
                );
            }
        }
    }

    #[test]
    fn fixed_size_blocks_reject_other_widths() {
        assert!(Arch::Approx4x4.behavioral(8).is_err());
        assert!(Arch::Approx4x2.netlist(8).is_err());
    }
}
