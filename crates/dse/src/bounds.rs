//! Static bounds for configurations: the bridge from [`Config`] trees
//! to the `axmul-absint` abstract-interpretation engine.
//!
//! Exhaustive characterization is exact but costs a full sweep (or a
//! large sample) per candidate; the abstract interpreter walks the
//! configuration *tree* instead and returns sound worst-case-error
//! brackets in microseconds, at any width. The search uses those
//! brackets two ways:
//!
//! * **Constraint pruning** — a candidate whose *lower* bound already
//!   exceeds the caller's worst-case-error budget can never satisfy
//!   it; skipping it is admissible (no qualifying design is lost).
//! * **Dominance pruning** — a candidate whose lower bound is at least
//!   the *upper* bound of an already-seen design that is also no
//!   larger can never beat that design on the (LUT, worst-case-error)
//!   plane; it cannot join that Pareto front.
//!
//! Both predicates consult only sound bounds, so pruning never
//! discards a design the exact evaluation would have kept — the
//! headline property the `repro absint` experiment checks.

use axmul_absint::{analyze_tree, AbsTree, AbsintError, LeafKind, TreeAnalysis};
use axmul_core::behavioral::Summation;

use crate::config::{Config, Leaf};

/// Converts a configuration tree into the abstract interpreter's
/// mirror representation.
#[must_use]
pub fn abs_tree(cfg: &Config) -> AbsTree {
    match cfg {
        Config::Leaf(l) => AbsTree::Leaf(match l {
            Leaf::Exact => LeafKind::Exact,
            Leaf::Approx => LeafKind::Approx4x4,
            Leaf::Truncated(k) => LeafKind::PpTruncated(*k),
        }),
        Config::Quad { summation, sub } => AbsTree::Quad {
            summation: *summation,
            sub: Box::new([
                abs_tree(&sub[0]),
                abs_tree(&sub[1]),
                abs_tree(&sub[2]),
                abs_tree(&sub[3]),
            ]),
        },
    }
}

/// Runs the abstract interpreter on a configuration: sound error
/// brackets, value interval and a verifiable certificate — no netlist,
/// no simulation.
///
/// # Errors
///
/// Fails only when the configuration is wider than the interpreter's
/// arithmetic headroom ([`axmul_absint::MAX_ABSINT_BITS`]).
pub fn static_bounds(cfg: &Config) -> Result<TreeAnalysis, AbsintError> {
    analyze_tree(&abs_tree(cfg))
}

/// One design's static footprint on the (area, worst-case-error)
/// plane: everything the dominance predicate needs, nothing exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPoint {
    /// Canonical configuration key.
    pub key: String,
    /// LUT count of the assembled netlist (structural, exact).
    pub luts: usize,
    /// Sound lower bound on the worst-case error magnitude.
    pub wce_lb: u128,
    /// Sound upper bound on the worst-case error magnitude.
    pub wce_ub: u128,
}

impl StaticPoint {
    /// Builds the point for a configuration; assembles the netlist for
    /// the LUT count but never simulates it.
    ///
    /// # Errors
    ///
    /// Propagates [`static_bounds`] width errors.
    pub fn of(cfg: &Config) -> Result<StaticPoint, AbsintError> {
        let analysis = static_bounds(cfg)?;
        Ok(StaticPoint {
            key: analysis.key.clone(),
            luts: cfg.assemble().lut_count(),
            wce_lb: analysis.bound.wce_lb,
            wce_ub: analysis.bound.wce_ub(),
        })
    }

    /// Whether this point *provably* dominates a candidate with the
    /// given area and worst-case-error lower bound: no larger, no
    /// worse, strictly better on at least one axis — judged entirely
    /// from sound bounds (`self.wce_ub` vs the candidate's `wce_lb`),
    /// so a `true` here can never be wrong about the exact values.
    #[must_use]
    pub fn provably_dominates(&self, luts: usize, wce_lb: u128) -> bool {
        self.luts <= luts && self.wce_ub <= wce_lb && (self.luts < luts || self.wce_ub < wce_lb)
    }
}

/// Bound-guided pruning knobs for [`crate::DseOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneOptions {
    /// Skip candidates whose static lower bound exceeds this
    /// worst-case-error budget.
    pub max_wce: Option<u128>,
    /// Skip candidates provably dominated on the (LUT, worst-case
    /// error) plane by an already-screened design. The verdicts depend
    /// on screening order, so multi-worker hill-climbs with this on
    /// trade run-to-run reproducibility for fewer evaluations
    /// (single-worker runs stay deterministic).
    pub dominance: bool,
}

impl PruneOptions {
    /// Constraint-only pruning with the given worst-case-error budget.
    #[must_use]
    pub fn max_wce(budget: u128) -> Self {
        PruneOptions {
            max_wce: Some(budget),
            dominance: false,
        }
    }
}

/// The paper's homogeneous configurations as static points — a cheap
/// smoke test of the whole bridge.
#[must_use]
pub fn paper_points(bits: u32) -> Vec<StaticPoint> {
    [Summation::Accurate, Summation::CarryFree]
        .into_iter()
        .map(|s| StaticPoint::of(&Config::paper(bits, s)).expect("paper widths fit"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_preserves_key_and_width() {
        for cfg in Config::enumerate(8) {
            let t = abs_tree(&cfg);
            assert_eq!(t.key(), cfg.key());
            assert_eq!(t.bits(), cfg.bits());
        }
    }

    #[test]
    fn paper_ca_8x8_static_point_is_exact() {
        let pts = paper_points(8);
        assert_eq!(pts[0].key, "(a A A A A)");
        assert_eq!(pts[0].luts, 57);
        // The combined witness lift makes the uniform accurate tree
        // exact: both brackets collapse onto the true WCE.
        assert_eq!(pts[0].wce_lb, 2312);
        assert_eq!(pts[0].wce_ub, 2312);
        // Carry-free keeps a gap (the dropped-carry bound is conservative)
        // but stays a bracket.
        assert_eq!(pts[1].key, "(c A A A A)");
        assert!(pts[1].wce_lb >= 2048);
        assert!(pts[1].wce_ub >= pts[1].wce_lb);
    }

    #[test]
    fn exact_configs_have_zero_bounds() {
        let cfg = Config::uniform(Config::Leaf(Leaf::Exact), Summation::Accurate);
        let a = static_bounds(&cfg).unwrap();
        assert_eq!(a.bound.wce_lb, 0);
        assert_eq!(a.bound.wce_ub(), 0);
        assert!(a.certificate.verify().is_ok());
    }

    #[test]
    fn dominance_is_judged_from_sound_bounds_only() {
        let strong = StaticPoint {
            key: "p".into(),
            luts: 40,
            wce_lb: 10,
            wce_ub: 100,
        };
        // Candidate with lb 100: p's ub == lb and fewer LUTs → dominated.
        assert!(strong.provably_dominates(50, 100));
        // Equal on both axes: not strictly better anywhere.
        assert!(!strong.provably_dominates(40, 100));
        // Candidate could still be better (lb 50 < p's ub 100).
        assert!(!strong.provably_dominates(50, 50));
        // Candidate is smaller: never dominated by a larger design.
        assert!(!strong.provably_dominates(30, 200));
    }

    #[test]
    fn width_overflow_is_an_error_not_a_panic() {
        let mut cfg = Config::Leaf(Leaf::Approx);
        for _ in 0..5 {
            cfg = Config::uniform(cfg, Summation::Accurate);
        }
        assert_eq!(cfg.bits(), 128);
        assert!(static_bounds(&cfg).is_err());
    }
}
