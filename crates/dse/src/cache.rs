//! Memoized characterization of configuration sub-blocks.
//!
//! Characterizing a candidate means knowing its hardware cost (LUTs,
//! critical path, energy/EDP — from `axmul-fabric`) and its error
//! statistics (from `axmul-metrics`). Both are expensive to recompute
//! per candidate, but candidates share sub-blocks massively: every 8×8
//! candidate is built from the same five 4×4 leaves, and 16×16
//! candidates re-use whole 8×8 quadrants. [`CharCache`] therefore
//! memoizes one [`BlockChar`] per *canonical configuration key*
//! ([`crate::Config::key`]) and assembles parents from cached children.
//!
//! # Why value tables, not error PMFs
//!
//! The four quadrant products of a recursive multiplier share operand
//! halves (`AL·BL` and `AL·BH` both read `AL`), so their errors are
//! *dependent* random variables: convolving per-quadrant error PMFs
//! would be wrong (and under carry-free summation the quadrant errors
//! do not even compose additively). The cache instead stores each
//! sub-block's exhaustive **value table** (256 entries for a 4-bit
//! block, 65 536 for 8-bit) and composes parent values exactly with
//! [`axmul_core::behavioral::combine_products`]. Composed statistics
//! are therefore *exact* — bit-identical to sweeping the assembled
//! netlist — which the crate's property tests assert.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use axmul_core::behavioral::{combine_products, Summation};
use axmul_core::{mask_for, Multiplier};
use axmul_fabric::area::AreaReport;
use axmul_fabric::compile::CompiledNetlist;
use axmul_fabric::cost::{Characterizer, NetlistCost};
use axmul_fabric::{FabricError, Netlist};
use axmul_metrics::{ErrorStats, StatsBuilder};

/// Version of the characterization algorithm, mixed into every
/// persisted record's hash. Bump it whenever a change alters the float
/// values a build produces (e.g. the wide-lane energy rework moved the
/// weight fold to the end of the run, changing `energy_per_op`/`edp`
/// in the last bits) so stale records rebuild instead of silently
/// serving the old numbers.
const CHAR_ALGO_VERSION: u64 = 2;

use crate::config::Config;
use crate::store::{netlist_fingerprint, DiskStore, StoreError, StoredChar};

/// Fully-characterized configuration block: netlist, hardware cost,
/// exact evaluator and error statistics.
#[derive(Debug, Clone)]
pub struct BlockChar {
    /// Canonical configuration key this record describes.
    pub key: String,
    /// Operand width in bits.
    pub bits: u32,
    /// The assembled structural netlist.
    pub netlist: Arc<Netlist>,
    /// Area / timing / energy of the netlist.
    pub cost: NetlistCost,
    /// Error statistics: exhaustive for widths ≤ 8 bits, sampled above.
    pub stats: ErrorStats,
    /// Exhaustive value table (`table[(b << bits) | a]`) for widths
    /// ≤ 8 bits; `None` above.
    pub table: Option<Arc<Vec<u32>>>,
    evaluator: ComposedMultiplier,
}

impl BlockChar {
    /// A cheap, exact behavioral evaluator of this block (value-table
    /// lookups at ≤ 8 bits, recursive table composition above).
    #[must_use]
    pub fn multiplier(&self) -> ComposedMultiplier {
        self.evaluator.clone()
    }
}

/// Exact behavioral evaluator of a configuration, backed by the
/// cache's memoized value tables. Implements [`Multiplier`], so it
/// plugs into `axmul-metrics` and application-level simulation.
#[derive(Debug, Clone)]
pub struct ComposedMultiplier {
    bits: u32,
    name: String,
    node: EvalNode,
}

#[derive(Debug, Clone)]
enum EvalNode {
    /// Exhaustive table, indexed `(b << bits) | a`.
    Table { bits: u32, table: Arc<Vec<u32>> },
    /// Recursive composition of four half-width evaluators.
    Quad {
        summation: Summation,
        m: u32,
        sub: Box<[EvalNode; 4]>,
    },
}

impl EvalNode {
    fn eval(&self, a: u64, b: u64) -> u64 {
        match self {
            EvalNode::Table { bits, table } => table[((b as usize) << bits) | a as usize].into(),
            EvalNode::Quad { summation, m, sub } => {
                let mask = mask_for(*m);
                let (al, ah) = (a & mask, a >> m);
                let (bl, bh) = (b & mask, b >> m);
                combine_products(
                    sub[0].eval(al, bl),
                    sub[1].eval(ah, bl),
                    sub[2].eval(al, bh),
                    sub[3].eval(ah, bh),
                    *m,
                    *summation,
                )
            }
        }
    }
}

/// Exhaustive value table of a quad evaluator (`table[(b << bits) | a]`),
/// shared by the build and restore paths so both produce bit-identical
/// tables.
fn flatten_quad(quad: &EvalNode, bits: u32) -> Vec<u32> {
    let mut table = vec![0u32; 1usize << (2 * bits)];
    for b in 0..=mask_for(bits) {
        for a in 0..=mask_for(bits) {
            table[((b as usize) << bits) | a as usize] = quad.eval(a, b) as u32;
        }
    }
    table
}

/// The DSE hot loop: flattens a quad whose four children are value
/// tables AND accumulates its exhaustive error statistics in one pass,
/// composing products directly from hoisted child-table rows instead of
/// walking the evaluator tree per pair. Sweep order is the canonical
/// `b` outer / `a` fast axis and the accumulator is
/// [`StatsBuilder`], so both outputs are bit-identical to
/// [`flatten_quad`] + [`ErrorStats::exhaustive`].
#[allow(clippy::too_many_arguments)]
fn fused_quad_table_stats(
    name: &str,
    bits: u32,
    m: u32,
    summation: Summation,
    ll: &[u32],
    hl: &[u32],
    lh: &[u32],
    hh: &[u32],
) -> (Vec<u32>, ErrorStats) {
    let half = 1usize << m;
    let mut table = vec![0u32; 1usize << (2 * bits)];
    let mut sb = StatsBuilder::new();
    let mut out = table.iter_mut();
    for b in 0..1u64 << bits {
        let bl = (b as usize) & (half - 1);
        let bh = (b as usize) >> m;
        let r_ll = &ll[bl << m..(bl << m) + half];
        let r_hl = &hl[bl << m..(bl << m) + half];
        let r_lh = &lh[bh << m..(bh << m) + half];
        let r_hh = &hh[bh << m..(bh << m) + half];
        for ah in 0..half {
            let p_hl = u64::from(r_hl[ah]);
            let p_hh = u64::from(r_hh[ah]);
            let a_hi = (ah as u64) << m;
            for al in 0..half {
                let a = a_hi | al as u64;
                let p = combine_products(
                    u64::from(r_ll[al]),
                    p_hl,
                    u64::from(r_lh[al]),
                    p_hh,
                    m,
                    summation,
                );
                // Index (b << bits) | a is exactly the write cursor.
                *out.next().expect("table sized to the operand space") = p as u32;
                sb.push(a, b, a * b, p);
            }
        }
    }
    (table, sb.finish(name.to_string(), bits, bits))
}

impl Multiplier for ComposedMultiplier {
    fn a_bits(&self) -> u32 {
        self.bits
    }
    fn b_bits(&self) -> u32 {
        self.bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        let mask = mask_for(self.bits);
        self.node.eval(a & mask, b & mask)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Thread-safe memoization cache of sub-block characterizations.
///
/// Shared by reference across the worker pool; lookups and inserts are
/// internally synchronized, and hit/miss counters are atomic.
#[derive(Debug)]
pub struct CharCache {
    characterizer: Characterizer,
    /// Number of sampled operand pairs for widths > 8 bits.
    samples: u64,
    /// Seed of the sampled-stats stream.
    sample_seed: u64,
    map: Mutex<HashMap<String, Arc<BlockChar>>>,
    store: Option<Arc<DiskStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    builds: AtomicU64,
    store_failures: AtomicU64,
    last_store_error: Mutex<Option<String>>,
    time_sta_ns: AtomicU64,
    time_energy_ns: AtomicU64,
    time_error_ns: AtomicU64,
}

/// Cumulative wall-clock split of the characterizations a [`CharCache`]
/// has built, by phase (see [`CharCache::time_breakdown`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CharTimeBreakdown {
    /// Error-statistics sweeps (exhaustive value tables / sampling).
    pub error: Duration,
    /// Packed-stimulus energy measurements.
    pub energy: Duration,
    /// Static timing analysis.
    pub sta: Duration,
}

/// Why restoring a persisted record failed. Store-level failures fall
/// back to a rebuild; fabric failures are real and propagate.
enum RestoreError {
    Store(StoreError),
    Fabric(FabricError),
}

impl From<StoreError> for RestoreError {
    fn from(e: StoreError) -> Self {
        RestoreError::Store(e)
    }
}

impl CharCache {
    /// Creates an empty cache with 100 000 sampled pairs for wide
    /// blocks.
    #[must_use]
    pub fn new(characterizer: Characterizer) -> Self {
        CharCache {
            characterizer,
            samples: 100_000,
            sample_seed: 0x5EED,
            map: Mutex::new(HashMap::new()),
            store: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            store_failures: AtomicU64::new(0),
            last_store_error: Mutex::new(None),
            time_sta_ns: AtomicU64::new(0),
            time_energy_ns: AtomicU64::new(0),
            time_error_ns: AtomicU64::new(0),
        }
    }

    /// Overrides the sampling policy for widths > 8 bits.
    #[must_use]
    pub fn with_sampling(mut self, samples: u64, seed: u64) -> Self {
        self.samples = samples;
        self.sample_seed = seed;
        self
    }

    /// Backs the cache with a persistent on-disk store: in-memory
    /// misses first consult the store (skipping characterization on a
    /// hit), and freshly built records are persisted for the next
    /// process. Restored characterizations are bit-identical to built
    /// ones; any unreadable, corrupt or stale record falls back to a
    /// clean rebuild (counted by [`CharCache::store_failures`]).
    #[must_use]
    pub fn with_store(mut self, store: Arc<DiskStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The backing persistent store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.as_ref()
    }

    /// Characterizes `cfg`, reusing every already-characterized
    /// sub-block (including `cfg` itself on repeat queries).
    ///
    /// # Errors
    ///
    /// Propagates netlist simulation errors.
    pub fn characterize(&self, cfg: &Config) -> Result<Arc<BlockChar>, FabricError> {
        let key = cfg.key();
        if let Some(hit) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let record = match self.restore(cfg, &key) {
            Ok(Some(rec)) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Arc::new(rec)
            }
            Ok(None) => Arc::new(self.build_and_persist(cfg, &key)?),
            Err(RestoreError::Fabric(e)) => return Err(e),
            Err(RestoreError::Store(e)) => {
                // Truncated, corrupt, version-mismatched or stale
                // record: rebuild cleanly and overwrite it.
                self.store_failures.fetch_add(1, Ordering::Relaxed);
                *self.last_store_error.lock().expect("store error lock") = Some(e.to_string());
                Arc::new(self.build_and_persist(cfg, &key)?)
            }
        };
        self.map
            .lock()
            .expect("cache lock")
            .entry(key)
            .or_insert_with(|| Arc::clone(&record));
        Ok(record)
    }

    /// Attempts to rebuild a [`BlockChar`] from the persistent store:
    /// netlist reassembled from the key, leaf tables read back, quad
    /// tables recomposed exactly from (recursively restored) children,
    /// cost and stats taken from the record. `Ok(None)` = not stored.
    fn restore(&self, cfg: &Config, key: &str) -> Result<Option<BlockChar>, RestoreError> {
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let Some(rec) = store.load(key)? else {
            return Ok(None);
        };
        let bits = cfg.bits();
        if rec.bits != bits {
            return Err(StoreError::Corrupt(format!(
                "record width {} does not match key width {bits}",
                rec.bits
            ))
            .into());
        }
        let netlist = cfg.assemble();
        let expected = self.record_hash(&netlist, bits);
        if rec.netlist_hash != expected {
            return Err(StoreError::StaleNetlist {
                expected,
                found: rec.netlist_hash,
            }
            .into());
        }
        let node = match cfg {
            Config::Leaf(_) => {
                let Some(table) = rec.table.clone() else {
                    return Err(StoreError::Corrupt("leaf record without table".into()).into());
                };
                if table.len() != 1usize << (2 * bits) {
                    return Err(StoreError::Corrupt(format!(
                        "leaf table has {} entries, expected {}",
                        table.len(),
                        1usize << (2 * bits)
                    ))
                    .into());
                }
                EvalNode::Table {
                    bits,
                    table: Arc::new(table),
                }
            }
            Config::Quad { summation, sub } => {
                let children = [
                    self.characterize(&sub[0]).map_err(RestoreError::Fabric)?,
                    self.characterize(&sub[1]).map_err(RestoreError::Fabric)?,
                    self.characterize(&sub[2]).map_err(RestoreError::Fabric)?,
                    self.characterize(&sub[3]).map_err(RestoreError::Fabric)?,
                ];
                let quad = EvalNode::Quad {
                    summation: *summation,
                    m: bits / 2,
                    sub: Box::new([
                        children[0].evaluator.node.clone(),
                        children[1].evaluator.node.clone(),
                        children[2].evaluator.node.clone(),
                        children[3].evaluator.node.clone(),
                    ]),
                };
                if bits <= 8 {
                    EvalNode::Table {
                        bits,
                        table: Arc::new(flatten_quad(&quad, bits)),
                    }
                } else {
                    quad
                }
            }
        };
        let cost = NetlistCost {
            area: AreaReport {
                luts: rec.luts as usize,
                carry4s: rec.carry4s as usize,
                wasted_sites: rec.wasted_sites as usize,
                dead_outputs: rec.dead_outputs as usize,
                ignored_pins: rec.ignored_pins as usize,
            },
            critical_path_ns: rec.critical_path_ns,
            energy_per_op: rec.energy_per_op,
            edp: rec.edp,
        };
        let evaluator = ComposedMultiplier {
            bits,
            name: key.to_string(),
            node,
        };
        Ok(Some(BlockChar {
            key: key.to_string(),
            bits,
            netlist: Arc::new(netlist),
            cost,
            stats: rec.stats.clone(),
            table: match &evaluator.node {
                EvalNode::Table { table, .. } => Some(Arc::clone(table)),
                EvalNode::Quad { .. } => None,
            },
            evaluator,
        }))
    }

    /// Per-record version hash: the structural netlist fingerprint
    /// mixed with [`CHAR_ALGO_VERSION`], plus the sampling policy for
    /// widths whose statistics are sampled rather than exhaustive.
    fn record_hash(&self, netlist: &Netlist, bits: u32) -> u64 {
        let mut h = netlist_fingerprint(netlist);
        let mut mix = |v: u64| {
            h ^= v;
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
        };
        mix(CHAR_ALGO_VERSION);
        if 2 * bits > 16 {
            mix(self.samples);
            mix(self.sample_seed);
        }
        h
    }

    fn build_and_persist(&self, cfg: &Config, key: &str) -> Result<BlockChar, FabricError> {
        self.builds.fetch_add(1, Ordering::Relaxed);
        let block = self.build(cfg, key)?;
        if let Some(store) = &self.store {
            // Leaf value tables are persisted; quad tables are cheap to
            // recompose from children, so only stats/cost are stored.
            let table = match cfg {
                Config::Leaf(_) => block.table.as_deref().cloned(),
                Config::Quad { .. } => None,
            };
            let rec = StoredChar {
                key: key.to_string(),
                bits: block.bits,
                netlist_hash: self.record_hash(&block.netlist, block.bits),
                luts: block.cost.area.luts as u64,
                carry4s: block.cost.area.carry4s as u64,
                wasted_sites: block.cost.area.wasted_sites as u64,
                dead_outputs: block.cost.area.dead_outputs as u64,
                ignored_pins: block.cost.area.ignored_pins as u64,
                critical_path_ns: block.cost.critical_path_ns,
                energy_per_op: block.cost.energy_per_op,
                edp: block.cost.edp,
                stats: block.stats.clone(),
                table,
            };
            if store.save(&rec).is_err() {
                self.store_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(block)
    }

    fn build(&self, cfg: &Config, key: &str) -> Result<BlockChar, FabricError> {
        let bits = cfg.bits();
        // Each block is compiled into the fabric's bit-sliced program
        // exactly once; the leaf value-table sweep and the
        // energy-characterization stimulus both run over that program.
        let (netlist, node, prog) = match cfg {
            Config::Leaf(leaf) => {
                let nl = leaf.netlist();
                let prog = CompiledNetlist::compile(&nl);
                let mut table = vec![0u32; 1usize << (2 * bits)];
                prog.for_each_operand_pair_in(0..1u64 << (2 * bits), |a, b, out| {
                    table[((b as usize) << bits) | a as usize] = out[0] as u32;
                })?;
                let node = EvalNode::Table {
                    bits,
                    table: Arc::new(table),
                };
                (nl, node, prog)
            }
            Config::Quad { summation, sub } => {
                let subs = [
                    self.characterize(&sub[0])?,
                    self.characterize(&sub[1])?,
                    self.characterize(&sub[2])?,
                    self.characterize(&sub[3])?,
                ];
                let nl = axmul_core::structural::compose_quad_netlist(
                    key.to_string(),
                    &subs[0].netlist,
                    &subs[1].netlist,
                    &subs[2].netlist,
                    &subs[3].netlist,
                    *summation,
                );
                let m = bits / 2;
                let sub_nodes = Box::new([
                    subs[0].evaluator.node.clone(),
                    subs[1].evaluator.node.clone(),
                    subs[2].evaluator.node.clone(),
                    subs[3].evaluator.node.clone(),
                ]);
                let quad = EvalNode::Quad {
                    summation: *summation,
                    m,
                    sub: sub_nodes,
                };
                let prog = CompiledNetlist::compile(&nl);
                (nl, quad, prog)
            }
        };
        let (cost, char_times) = self.characterizer.characterize_timed(&netlist, &prog)?;
        self.time_sta_ns
            .fetch_add(char_times.sta.as_nanos() as u64, Ordering::Relaxed);
        self.time_energy_ns
            .fetch_add(char_times.energy.as_nanos() as u64, Ordering::Relaxed);
        let t_err = Instant::now();
        // For quads at ≤ 8 bits the flattening sweep and the exhaustive
        // statistics visit the same pairs in the same order, so one pass
        // ([`ErrorStats::exhaustive_tap`]) produces both; the table is
        // bit-identical to [`flatten_quad`] and the restore path.
        let (node, stats) = match node {
            EvalNode::Quad {
                summation,
                m,
                ref sub,
            } if bits <= 8 => {
                if let [EvalNode::Table { table: ll, .. }, EvalNode::Table { table: hl, .. }, EvalNode::Table { table: lh, .. }, EvalNode::Table { table: hh, .. }] =
                    &**sub
                {
                    let (table, stats) =
                        fused_quad_table_stats(key, bits, m, summation, ll, hl, lh, hh);
                    let node = EvalNode::Table {
                        bits,
                        table: Arc::new(table),
                    };
                    (node, stats)
                } else {
                    let walker = ComposedMultiplier {
                        bits,
                        name: key.to_string(),
                        node,
                    };
                    let mut table = vec![0u32; 1usize << (2 * bits)];
                    let stats = ErrorStats::exhaustive_tap(&walker, |a, b, p| {
                        table[((b as usize) << bits) | a as usize] = p as u32;
                    });
                    let node = EvalNode::Table {
                        bits,
                        table: Arc::new(table),
                    };
                    (node, stats)
                }
            }
            node => {
                let evaluator = ComposedMultiplier {
                    bits,
                    name: key.to_string(),
                    node,
                };
                let stats = if 2 * bits <= 16 {
                    ErrorStats::exhaustive(&evaluator)
                } else {
                    ErrorStats::sampled(&evaluator, self.samples, self.sample_seed)
                };
                (evaluator.node, stats)
            }
        };
        self.time_error_ns
            .fetch_add(t_err.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let evaluator = ComposedMultiplier {
            bits,
            name: key.to_string(),
            node,
        };
        Ok(BlockChar {
            key: key.to_string(),
            bits,
            netlist: Arc::new(netlist),
            cost,
            stats,
            table: match &evaluator.node {
                EvalNode::Table { table, .. } => Some(Arc::clone(table)),
                EvalNode::Quad { .. } => None,
            },
            evaluator,
        })
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// In-memory cache misses so far. A miss is either restored from
    /// the persistent store ([`CharCache::disk_hits`]) or characterized
    /// from scratch ([`CharCache::builds`]).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// In-memory misses served from the persistent store without any
    /// recharacterization.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Characterizations actually computed (netlist sweeps + energy
    /// stimulus). Zero on a fully warm store.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Cumulative wall-clock split of the characterizations this cache
    /// has built: error-statistics sweeps vs energy measurements vs
    /// STA. Restores and in-memory hits add nothing — the split covers
    /// actual compute only.
    pub fn time_breakdown(&self) -> CharTimeBreakdown {
        CharTimeBreakdown {
            error: Duration::from_nanos(self.time_error_ns.load(Ordering::Relaxed)),
            energy: Duration::from_nanos(self.time_energy_ns.load(Ordering::Relaxed)),
            sta: Duration::from_nanos(self.time_sta_ns.load(Ordering::Relaxed)),
        }
    }

    /// Store records that could not be used (unreadable, truncated,
    /// corrupt, stale) or written; each one fell back to a clean
    /// rebuild / was skipped.
    pub fn store_failures(&self) -> u64 {
        self.store_failures.load(Ordering::Relaxed)
    }

    /// Human-readable description of the most recent store failure,
    /// for diagnostics (e.g. a daemon's stats endpoint).
    pub fn last_store_error(&self) -> Option<String> {
        self.last_store_error
            .lock()
            .expect("store error lock")
            .clone()
    }

    /// `hits / (hits + misses)`, or 0 before the first query.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of distinct sub-blocks characterized.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
