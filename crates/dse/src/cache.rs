//! Memoized characterization of configuration sub-blocks.
//!
//! Characterizing a candidate means knowing its hardware cost (LUTs,
//! critical path, energy/EDP — from `axmul-fabric`) and its error
//! statistics (from `axmul-metrics`). Both are expensive to recompute
//! per candidate, but candidates share sub-blocks massively: every 8×8
//! candidate is built from the same five 4×4 leaves, and 16×16
//! candidates re-use whole 8×8 quadrants. [`CharCache`] therefore
//! memoizes one [`BlockChar`] per *canonical configuration key*
//! ([`crate::Config::key`]) and assembles parents from cached children.
//!
//! # Why value tables, not error PMFs
//!
//! The four quadrant products of a recursive multiplier share operand
//! halves (`AL·BL` and `AL·BH` both read `AL`), so their errors are
//! *dependent* random variables: convolving per-quadrant error PMFs
//! would be wrong (and under carry-free summation the quadrant errors
//! do not even compose additively). The cache instead stores each
//! sub-block's exhaustive **value table** (256 entries for a 4-bit
//! block, 65 536 for 8-bit) and composes parent values exactly with
//! [`axmul_core::behavioral::combine_products`]. Composed statistics
//! are therefore *exact* — bit-identical to sweeping the assembled
//! netlist — which the crate's property tests assert.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use axmul_core::behavioral::{combine_products, Summation};
use axmul_core::{mask_for, Multiplier};
use axmul_fabric::compile::CompiledNetlist;
use axmul_fabric::cost::{Characterizer, NetlistCost};
use axmul_fabric::{FabricError, Netlist};
use axmul_metrics::ErrorStats;

use crate::config::Config;

/// Fully-characterized configuration block: netlist, hardware cost,
/// exact evaluator and error statistics.
#[derive(Debug, Clone)]
pub struct BlockChar {
    /// Canonical configuration key this record describes.
    pub key: String,
    /// Operand width in bits.
    pub bits: u32,
    /// The assembled structural netlist.
    pub netlist: Arc<Netlist>,
    /// Area / timing / energy of the netlist.
    pub cost: NetlistCost,
    /// Error statistics: exhaustive for widths ≤ 8 bits, sampled above.
    pub stats: ErrorStats,
    /// Exhaustive value table (`table[(b << bits) | a]`) for widths
    /// ≤ 8 bits; `None` above.
    pub table: Option<Arc<Vec<u32>>>,
    evaluator: ComposedMultiplier,
}

impl BlockChar {
    /// A cheap, exact behavioral evaluator of this block (value-table
    /// lookups at ≤ 8 bits, recursive table composition above).
    #[must_use]
    pub fn multiplier(&self) -> ComposedMultiplier {
        self.evaluator.clone()
    }
}

/// Exact behavioral evaluator of a configuration, backed by the
/// cache's memoized value tables. Implements [`Multiplier`], so it
/// plugs into `axmul-metrics` and application-level simulation.
#[derive(Debug, Clone)]
pub struct ComposedMultiplier {
    bits: u32,
    name: String,
    node: EvalNode,
}

#[derive(Debug, Clone)]
enum EvalNode {
    /// Exhaustive table, indexed `(b << bits) | a`.
    Table { bits: u32, table: Arc<Vec<u32>> },
    /// Recursive composition of four half-width evaluators.
    Quad {
        summation: Summation,
        m: u32,
        sub: Box<[EvalNode; 4]>,
    },
}

impl EvalNode {
    fn eval(&self, a: u64, b: u64) -> u64 {
        match self {
            EvalNode::Table { bits, table } => table[((b as usize) << bits) | a as usize].into(),
            EvalNode::Quad { summation, m, sub } => {
                let mask = mask_for(*m);
                let (al, ah) = (a & mask, a >> m);
                let (bl, bh) = (b & mask, b >> m);
                combine_products(
                    sub[0].eval(al, bl),
                    sub[1].eval(ah, bl),
                    sub[2].eval(al, bh),
                    sub[3].eval(ah, bh),
                    *m,
                    *summation,
                )
            }
        }
    }
}

impl Multiplier for ComposedMultiplier {
    fn a_bits(&self) -> u32 {
        self.bits
    }
    fn b_bits(&self) -> u32 {
        self.bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        let mask = mask_for(self.bits);
        self.node.eval(a & mask, b & mask)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Thread-safe memoization cache of sub-block characterizations.
///
/// Shared by reference across the worker pool; lookups and inserts are
/// internally synchronized, and hit/miss counters are atomic.
#[derive(Debug)]
pub struct CharCache {
    characterizer: Characterizer,
    /// Number of sampled operand pairs for widths > 8 bits.
    samples: u64,
    /// Seed of the sampled-stats stream.
    sample_seed: u64,
    map: Mutex<HashMap<String, Arc<BlockChar>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CharCache {
    /// Creates an empty cache with 100 000 sampled pairs for wide
    /// blocks.
    #[must_use]
    pub fn new(characterizer: Characterizer) -> Self {
        CharCache {
            characterizer,
            samples: 100_000,
            sample_seed: 0x5EED,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Overrides the sampling policy for widths > 8 bits.
    #[must_use]
    pub fn with_sampling(mut self, samples: u64, seed: u64) -> Self {
        self.samples = samples;
        self.sample_seed = seed;
        self
    }

    /// Characterizes `cfg`, reusing every already-characterized
    /// sub-block (including `cfg` itself on repeat queries).
    ///
    /// # Errors
    ///
    /// Propagates netlist simulation errors.
    pub fn characterize(&self, cfg: &Config) -> Result<Arc<BlockChar>, FabricError> {
        let key = cfg.key();
        if let Some(hit) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let record = Arc::new(self.build(cfg, &key)?);
        self.map
            .lock()
            .expect("cache lock")
            .entry(key)
            .or_insert_with(|| Arc::clone(&record));
        Ok(record)
    }

    fn build(&self, cfg: &Config, key: &str) -> Result<BlockChar, FabricError> {
        let bits = cfg.bits();
        // Each block is compiled into the fabric's bit-sliced program
        // exactly once; the leaf value-table sweep and the
        // energy-characterization stimulus both run over that program.
        let (netlist, node, prog) = match cfg {
            Config::Leaf(leaf) => {
                let nl = leaf.netlist();
                let prog = CompiledNetlist::compile(&nl);
                let mut table = vec![0u32; 1usize << (2 * bits)];
                prog.for_each_operand_pair_in(0..1u64 << (2 * bits), |a, b, out| {
                    table[((b as usize) << bits) | a as usize] = out[0] as u32;
                })?;
                let node = EvalNode::Table {
                    bits,
                    table: Arc::new(table),
                };
                (nl, node, prog)
            }
            Config::Quad { summation, sub } => {
                let subs = [
                    self.characterize(&sub[0])?,
                    self.characterize(&sub[1])?,
                    self.characterize(&sub[2])?,
                    self.characterize(&sub[3])?,
                ];
                let nl = axmul_core::structural::compose_quad_netlist(
                    key.to_string(),
                    &subs[0].netlist,
                    &subs[1].netlist,
                    &subs[2].netlist,
                    &subs[3].netlist,
                    *summation,
                );
                let m = bits / 2;
                let sub_nodes = Box::new([
                    subs[0].evaluator.node.clone(),
                    subs[1].evaluator.node.clone(),
                    subs[2].evaluator.node.clone(),
                    subs[3].evaluator.node.clone(),
                ]);
                let quad = EvalNode::Quad {
                    summation: *summation,
                    m,
                    sub: sub_nodes,
                };
                let node = if bits <= 8 {
                    // Flatten to an exhaustive table: parent queries then
                    // cost one lookup instead of a tree walk.
                    let mut table = vec![0u32; 1usize << (2 * bits)];
                    for b in 0..=mask_for(bits) {
                        for a in 0..=mask_for(bits) {
                            table[((b as usize) << bits) | a as usize] = quad.eval(a, b) as u32;
                        }
                    }
                    EvalNode::Table {
                        bits,
                        table: Arc::new(table),
                    }
                } else {
                    quad
                };
                let prog = CompiledNetlist::compile(&nl);
                (nl, node, prog)
            }
        };
        let cost = self.characterizer.characterize_with(&netlist, &prog)?;
        let evaluator = ComposedMultiplier {
            bits,
            name: key.to_string(),
            node,
        };
        let stats = if 2 * bits <= 16 {
            ErrorStats::exhaustive(&evaluator)
        } else {
            ErrorStats::sampled(&evaluator, self.samples, self.sample_seed)
        };
        Ok(BlockChar {
            key: key.to_string(),
            bits,
            netlist: Arc::new(netlist),
            cost,
            stats,
            table: match &evaluator.node {
                EvalNode::Table { table, .. } => Some(Arc::clone(table)),
                EvalNode::Quad { .. } => None,
            },
            evaluator,
        })
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. characterizations actually computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 before the first query.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of distinct sub-blocks characterized.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
