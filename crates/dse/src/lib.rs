//! # axmul-dse
//!
//! Design-space exploration over the recursive approximate-multiplier
//! configurations of the DAC'18 paper.
//!
//! The paper evaluates two *homogeneous* designs per width — all
//! quadrants approximate, summed accurately (`Ca`) or carry-free
//! (`Cc`). But the recursive construction admits a much larger space:
//! each 4×4 sub-block can independently be exact, the paper's
//! approximate kernel, or partial-product-truncated, and every
//! recursion level can pick its own summation. This crate enumerates or
//! searches that space and reports the error-vs-area and error-vs-EDP
//! Pareto fronts.
//!
//! The pipeline:
//!
//! 1. [`Config`] encodes one candidate as a tree with a canonical key.
//! 2. [`CharCache`] memoizes per-sub-block characterization — netlist,
//!    LUTs, critical path, energy (via [`axmul_fabric::cost::Characterizer`])
//!    and *exact* composed error statistics (value tables combined with
//!    [`axmul_core::behavioral::combine_products`], never independent
//!    PMF convolution — quadrants share operand halves).
//! 3. [`run`] drives a [`Strategy`] over a sharded worker pool and
//!    annotates each evaluated candidate with its Pareto membership.
//! 4. [`to_csv`] / [`text_report`] render the results.
//!
//! ```
//! use axmul_dse::{run, DseOptions, Strategy};
//!
//! let mut opts = DseOptions::exhaustive_8x8();
//! opts.strategy = Strategy::Random { budget: 20, seed: 1 };
//! opts.workers = 2;
//! let result = run(&opts)?;
//! assert!(!result.reports.is_empty());
//! assert!(!result.lut_front().is_empty());
//! # Ok::<(), axmul_fabric::FabricError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
mod cache;
mod config;
mod report;
pub mod sat_verify;
mod search;
pub mod store;

pub use bounds::{abs_tree, static_bounds, PruneOptions, StaticPoint};
pub use cache::{BlockChar, CharCache, CharTimeBreakdown, ComposedMultiplier};
pub use config::{Config, Leaf, ParseConfigError, LEAF_BITS};
pub use report::{text_report, to_csv};
pub use sat_verify::{sat_verify, SatVerifyReport, SpotCheck};
pub use search::{
    evaluate, evaluate_on, run, CandidateReport, DseOptions, DseResult, Strategy, WorkerStat,
};
pub use store::{DiskStore, StoreError, StoredChar, STORE_FORMAT_VERSION};
