//! SAT spot-check of the bound-guided pruning screen.
//!
//! Constraint pruning ([`crate::PruneOptions::max_wce`]) discards a
//! candidate when absint's *lower* bound on its worst-case error
//! already exceeds the budget. That is admissible exactly when the
//! lower bound really is a lower bound — a property absint proves on
//! paper and `repro absint` checks exhaustively at 8×8, but which no
//! exhaustive truth can confirm at 16×16 and beyond. This module
//! closes that gap with SAT: it samples the screen's discard and keep
//! decisions, has [`axmul_sat::prove_wce`] pin each sampled design's
//! *exact* worst-case error, and confirms that
//!
//! * every sampled discarded design's proven error really exceeds the
//!   budget (the screen never threw away a qualifying design), and
//! * every proven error sits inside absint's `[wce_lb, wce_ub]`
//!   bracket (the bounds the screen consulted were sound).
//!
//! Sampling is deterministic (evenly-strided over each partition), so
//! a spot-check is reproducible run to run.

use axmul_sat::{prove_wce, SatError, WceOptions};

use crate::bounds::static_bounds;
use crate::config::Config;

/// One sampled design's verdict.
#[derive(Debug, Clone)]
pub struct SpotCheck {
    /// Canonical configuration key.
    pub key: String,
    /// Absint's sound lower bound the screen consulted.
    pub wce_lb: u128,
    /// Absint's sound upper bound.
    pub wce_ub: u128,
    /// The exact worst-case error, SAT-proven.
    pub proven_wce: u128,
    /// Operand pair attaining `proven_wce` (replay-confirmed).
    pub witness: (u64, u64),
    /// Whether the constraint screen would discard this design.
    pub discarded: bool,
    /// For discarded designs: the proven error exceeds the budget, so
    /// the discard lost nothing. Vacuously `true` for kept designs.
    pub discard_justified: bool,
    /// `wce_lb ≤ proven_wce ≤ wce_ub`.
    pub in_bracket: bool,
    /// Solver conflicts spent on the proof.
    pub conflicts: u64,
    /// Wall-clock time of the proof in milliseconds.
    pub elapsed_ms: f64,
}

/// Outcome of one spot-check sweep.
#[derive(Debug, Clone)]
pub struct SatVerifyReport {
    /// The worst-case-error budget the screen enforced.
    pub budget: u128,
    /// How many candidates the screen examined.
    pub screened: usize,
    /// How many of them the screen discarded.
    pub discarded: usize,
    /// The sampled verdicts, discarded designs first.
    pub checks: Vec<SpotCheck>,
}

impl SatVerifyReport {
    /// Whether every sampled verdict upholds the screen: each discard
    /// justified, each proven error inside absint's bracket.
    #[must_use]
    pub fn sound(&self) -> bool {
        self.checks
            .iter()
            .all(|c| c.discard_justified && c.in_bracket)
    }
}

/// Spot-checks the constraint screen over `candidates` with the given
/// worst-case-error `budget`: partitions the candidates exactly as
/// [`crate::PruneOptions::max_wce`] would, samples up to `samples`
/// designs from each partition (evenly strided, deterministic), and
/// SAT-proves each sample's exact worst-case error. Candidates the
/// abstract interpreter cannot bound are kept by the screen and
/// skipped here, mirroring the search's own behavior.
///
/// # Errors
///
/// Propagates [`SatError`] from the underlying proofs (budget
/// exhaustion, encode failures); a clean refutation is *not* an error
/// — it surfaces as an unsound report.
pub fn sat_verify(
    candidates: &[Config],
    budget: u128,
    samples: usize,
) -> Result<SatVerifyReport, SatError> {
    let mut discarded = Vec::new();
    let mut kept = Vec::new();
    for cfg in candidates {
        let Ok(analysis) = static_bounds(cfg) else {
            continue; // the screen keeps what it cannot bound
        };
        let bound = &analysis.bound;
        let entry = (
            cfg,
            analysis.key.clone(),
            bound.wce_lb,
            bound.wce_ub(),
            bound.witness,
        );
        if bound.wce_lb > budget {
            discarded.push(entry);
        } else {
            kept.push(entry);
        }
    }
    let screened = discarded.len() + kept.len();
    let n_discarded = discarded.len();

    let mut checks = Vec::new();
    for partition in [discarded, kept] {
        for (cfg, key, wce_lb, wce_ub, hint) in stride_sample(partition, samples) {
            let netlist = cfg.assemble();
            let opts = WceOptions {
                hint,
                ..WceOptions::default()
            };
            let proof = prove_wce(&netlist, &opts)?;
            let was_discarded = wce_lb > budget;
            checks.push(SpotCheck {
                key,
                wce_lb,
                wce_ub,
                proven_wce: proof.wce,
                witness: proof.witness,
                discarded: was_discarded,
                discard_justified: !was_discarded || proof.wce > budget,
                in_bracket: wce_lb <= proof.wce && proof.wce <= wce_ub,
                conflicts: proof.stats.conflicts,
                elapsed_ms: proof.stats.elapsed_ms,
            });
        }
    }
    Ok(SatVerifyReport {
        budget,
        screened,
        discarded: n_discarded,
        checks,
    })
}

/// Takes up to `samples` elements of `items`, evenly strided from the
/// front, preserving order. Deterministic by construction.
fn stride_sample<T>(items: Vec<T>, samples: usize) -> Vec<T> {
    if samples == 0 || items.is_empty() {
        return Vec::new();
    }
    if items.len() <= samples {
        return items;
    }
    let step = items.len() / samples;
    items
        .into_iter()
        .step_by(step.max(1))
        .take(samples)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_check_upholds_the_screen_on_paper_configs() {
        // Absint lower bounds at 8×8: `(a A A A A)` has the exact
        // bracket [2312, 2312], `(c A A A A)` the loose [2048, 10472],
        // `(c X X X X)` the looser-still [0, 8160]. A 2100 budget
        // splits them: only the first is discarded.
        let candidates: Vec<Config> = ["(a A A A A)", "(c A A A A)", "(c X X X X)"]
            .iter()
            .map(|k| k.parse().unwrap())
            .collect();
        let report = sat_verify(&candidates, 2_100, 2).unwrap();
        assert_eq!(report.screened, 3);
        assert_eq!(report.discarded, 1, "{report:?}");
        assert_eq!(report.checks.len(), 3);
        assert!(
            report.checks.iter().any(|c| c.discarded),
            "must sample the discarded design"
        );
        assert!(report.sound(), "{report:?}");
        for c in &report.checks {
            assert!(
                c.wce_lb <= c.proven_wce && c.proven_wce <= c.wce_ub,
                "{c:?}"
            );
        }
        let paper = report
            .checks
            .iter()
            .find(|c| c.key == "(a A A A A)")
            .unwrap();
        assert!(paper.discarded && paper.discard_justified);
        assert_eq!(paper.proven_wce, 2312);
    }

    #[test]
    fn zero_budget_keeps_only_unproven_lower_bounds() {
        // Budget 0: every design with a positive lower bound is
        // discarded. The carry-free exact design has `wce_lb = 0`, so
        // the screen keeps it even though its true error is 8160 —
        // conservative, never unsound.
        let candidates: Vec<Config> = ["(a A A A A)", "(c X X X X)"]
            .iter()
            .map(|k| k.parse().unwrap())
            .collect();
        let report = sat_verify(&candidates, 0, 2).unwrap();
        assert_eq!(report.screened, 2);
        assert_eq!(report.discarded, 1, "{report:?}");
        assert!(report.sound(), "{report:?}");
        let kept = report.checks.iter().find(|c| !c.discarded).unwrap();
        assert_eq!(kept.key, "(c X X X X)");
        assert!(
            kept.proven_wce > 0,
            "the keep was conservative: true wce {} exceeds the budget",
            kept.proven_wce
        );
    }

    #[test]
    fn stride_sampling_is_deterministic_and_bounded() {
        assert_eq!(stride_sample(Vec::<u32>::new(), 3), Vec::<u32>::new());
        assert_eq!(stride_sample(vec![1, 2], 0), Vec::<u32>::new());
        assert_eq!(stride_sample(vec![1, 2, 3], 8), vec![1, 2, 3]);
        let picked = stride_sample((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(picked, vec![0, 3, 6]);
    }
}
