//! Persistent on-disk characterization store.
//!
//! [`DiskStore`] persists one [`StoredChar`] record per canonical
//! configuration key so a process restart (or a different process
//! sharing the cache directory) skips characterization entirely: the
//! expensive quantities — energy/EDP from the 1024-vector toggle sweep,
//! exhaustive error statistics, leaf value tables — are read back
//! instead of recomputed. The [`crate::CharCache`] composes everything
//! else (parent value tables, evaluators) from the records, so restored
//! characterizations are bit-identical to freshly computed ones.
//!
//! # Layout and format
//!
//! ```text
//! <cache-dir>/char-v2/<hh>/<hash16>.bin
//! ```
//!
//! `char-v2` pins [`STORE_FORMAT_VERSION`]; `<hh>` is the first byte of
//! the key's FNV-1a hash (256-way directory sharding); `<hash16>` the
//! full 64-bit hash in hex. Each file is one length-prefixed binary
//! record:
//!
//! ```text
//! magic "AXCH" | u32 format version | u64 payload length
//! payload bytes | u64 FNV-1a checksum of the payload
//! ```
//!
//! Writes go to a unique temporary file in the same directory followed
//! by an atomic rename, so readers never observe a half-written record
//! and concurrent writers of the same key settle on one winner.
//!
//! # Versioning
//!
//! Two mechanisms invalidate stale records. The format version gates
//! the whole directory (a bump abandons `char-v<old>` wholesale; bump
//! it whenever the record layout *or* the characterization models
//! change). Per record, [`StoredChar::netlist_hash`] fingerprints the
//! structural netlist the record describes; on load the caller
//! re-assembles the netlist from the key and rejects the record with
//! [`StoreError::StaleNetlist`] if the generators have since changed.
//! The record hash the [`crate::CharCache`] computes also mixes in its
//! characterization-algorithm version (`CHAR_ALGO_VERSION` in
//! `cache.rs`), which is bumped whenever the *semantics* of the stored
//! floats change — e.g. the packed-stimulus energy rework, which
//! accumulates integer toggle counts and applies the float weights
//! once at the end, shifting `energy_per_op`/`edp` by final-rounding
//! bits relative to the old per-batch accumulation. Records written by
//! an older algorithm therefore miss (via the netlist-hash mismatch
//! path) and are rebuilt instead of silently serving stale floats.
//!
//! # Hot tier
//!
//! A sharded in-process LRU (16 shards, [`DiskStore::with_hot_capacity`]
//! records overall) caches decoded records, so repeated loads — e.g.
//! several [`crate::CharCache`] instances sharing one store inside a
//! daemon — skip the filesystem and the decode.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use axmul_fabric::Netlist;
use axmul_metrics::ErrorStats;

/// Bump whenever the record layout or the characterization models
/// (delay, energy, stimulus policy, error-statistics definition)
/// change; old cache directories are then ignored rather than misread.
/// v2 added the worst-case operand witness list to the error stats.
pub const STORE_FORMAT_VERSION: u32 = 2;

/// Record file magic.
const MAGIC: [u8; 4] = *b"AXCH";

/// LRU shard count of the hot tier.
const LRU_SHARDS: usize = 16;

/// Default hot-tier capacity (records, across all shards).
const DEFAULT_HOT_CAPACITY: usize = 4096;

/// Typed failure of a store operation. Every variant is recoverable:
/// the characterization cache treats any load error as a miss and
/// rebuilds the record from scratch.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem failure (open, read, write, rename).
    Io(std::io::Error),
    /// The record does not start with the `AXCH` magic — the file is
    /// garbage or not a characterization record at all.
    BadMagic,
    /// The record's format version differs from
    /// [`STORE_FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The file ends before the declared record length — a torn or
    /// truncated write.
    Truncated,
    /// The payload checksum does not match — corrupted bytes.
    ChecksumMismatch,
    /// The payload is structurally invalid (bad lengths, non-UTF-8
    /// strings, impossible field values).
    Corrupt(String),
    /// The record was written for a different netlist than the one the
    /// key assembles today — the generators changed since it was saved.
    StaleNetlist {
        /// Fingerprint of the netlist the key assembles now.
        expected: u64,
        /// Fingerprint recorded in the store.
        found: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::BadMagic => write!(f, "store record has bad magic"),
            StoreError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "store record version {v} (supported: {STORE_FORMAT_VERSION})"
                )
            }
            StoreError::Truncated => write!(f, "store record is truncated"),
            StoreError::ChecksumMismatch => write!(f, "store record checksum mismatch"),
            StoreError::Corrupt(m) => write!(f, "store record is corrupt: {m}"),
            StoreError::StaleNetlist { expected, found } => write!(
                f,
                "store record is stale: netlist hash {found:#018x}, expected {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// The persisted subset of a characterization: everything expensive to
/// recompute, nothing derivable cheaply from the key (the netlist and
/// quad value tables are reassembled/recomposed on load).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredChar {
    /// Canonical configuration key.
    pub key: String,
    /// Operand width in bits.
    pub bits: u32,
    /// Fingerprint of the structural netlist this record describes
    /// (see [`netlist_fingerprint`]).
    pub netlist_hash: u64,
    /// LUT count.
    pub luts: u64,
    /// `CARRY4` count.
    pub carry4s: u64,
    /// Stranded LUT sites.
    pub wasted_sites: u64,
    /// Dead cell outputs.
    pub dead_outputs: u64,
    /// Routed-but-ignored LUT pins.
    pub ignored_pins: u64,
    /// Critical path in ns.
    pub critical_path_ns: f64,
    /// Average switching energy per operation.
    pub energy_per_op: f64,
    /// Energy-delay product.
    pub edp: f64,
    /// Error statistics (exhaustive ≤ 8 bits, sampled above).
    pub stats: ErrorStats,
    /// Exhaustive leaf value table; `None` for quads, whose tables are
    /// recomposed exactly from their children on load.
    pub table: Option<Vec<u32>>,
}

/// FNV-1a over a byte stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Stable structural fingerprint of a netlist: FNV-1a over its Verilog
/// export (cells, INITs, connectivity and port order all feed the
/// text). Any change to the generators changes the fingerprint and
/// invalidates persisted records for the affected keys.
///
/// The canonical implementation lives in [`axmul_netio::fingerprint`]:
/// because `export → import → export` is a byte fixpoint there, an
/// imported netlist fingerprints identically to its in-process twin
/// and warm cache records keep hitting for externally supplied
/// designs.
#[must_use]
pub fn netlist_fingerprint(netlist: &Netlist) -> u64 {
    axmul_netio::fingerprint(netlist)
}

/// One LRU shard: decoded records plus a logical clock for eviction.
#[derive(Debug, Default)]
struct LruShard {
    map: HashMap<String, (u64, Arc<StoredChar>)>,
    clock: u64,
}

impl LruShard {
    fn get(&mut self, key: &str) -> Option<Arc<StoredChar>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(stamp, rec)| {
            *stamp = clock;
            Arc::clone(rec)
        })
    }

    fn insert(&mut self, key: String, rec: Arc<StoredChar>, capacity: usize) {
        self.clock += 1;
        self.map.insert(key, (self.clock, rec));
        while self.map.len() > capacity.max(1) {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty shard");
            self.map.remove(&oldest);
        }
    }
}

/// Persistent, thread-safe characterization store: binary shards on
/// disk fronted by a sharded in-process LRU.
#[derive(Debug)]
pub struct DiskStore {
    /// `<cache-dir>/char-v<N>`.
    root: PathBuf,
    shards: Vec<Mutex<LruShard>>,
    hot_capacity: usize,
    tmp_counter: AtomicU64,
    hot_hits: AtomicU64,
    disk_reads: AtomicU64,
    saves: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) the store under `cache_dir`. Records
    /// live in a `char-v<N>` subdirectory, so a format bump silently
    /// starts an empty store next to the old one.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created.
    pub fn open(cache_dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = cache_dir
            .as_ref()
            .join(format!("char-v{STORE_FORMAT_VERSION}"));
        fs::create_dir_all(&root)?;
        Ok(DiskStore {
            root,
            shards: (0..LRU_SHARDS)
                .map(|_| Mutex::new(LruShard::default()))
                .collect(),
            hot_capacity: DEFAULT_HOT_CAPACITY,
            tmp_counter: AtomicU64::new(0),
            hot_hits: AtomicU64::new(0),
            disk_reads: AtomicU64::new(0),
            saves: AtomicU64::new(0),
        })
    }

    /// Overrides the hot-tier capacity (records, across all shards).
    #[must_use]
    pub fn with_hot_capacity(mut self, records: usize) -> Self {
        self.hot_capacity = records.max(LRU_SHARDS);
        self
    }

    /// Root directory records are stored under (the versioned subdir).
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn shard_of(&self, hash: u64) -> &Mutex<LruShard> {
        &self.shards[(hash as usize) % LRU_SHARDS]
    }

    /// On-disk path of `key`'s record.
    #[must_use]
    pub fn record_path(&self, key: &str) -> PathBuf {
        let hash = fnv1a(key.as_bytes());
        self.root
            .join(format!("{:02x}", hash >> 56))
            .join(format!("{hash:016x}.bin"))
    }

    /// Loads the record for `key`: hot tier first, then disk.
    /// `Ok(None)` means "not stored" (also returned on the
    /// astronomically unlikely event of a key-hash collision).
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s for unreadable, truncated, corrupt or
    /// version-mismatched records; callers are expected to treat any
    /// error as a miss and rebuild.
    pub fn load(&self, key: &str) -> Result<Option<Arc<StoredChar>>, StoreError> {
        let hash = fnv1a(key.as_bytes());
        if let Some(rec) = self.shard_of(hash).lock().expect("lru lock").get(key) {
            self.hot_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(rec));
        }
        let path = self.record_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        let rec = decode_record(&bytes)?;
        if rec.key != key {
            return Ok(None);
        }
        let rec = Arc::new(rec);
        self.shard_of(hash).lock().expect("lru lock").insert(
            key.to_string(),
            Arc::clone(&rec),
            self.hot_capacity / LRU_SHARDS,
        );
        Ok(Some(rec))
    }

    /// Persists `rec` (write-to-temp + atomic rename) and promotes it
    /// into the hot tier.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, rec: &StoredChar) -> Result<(), StoreError> {
        let hash = fnv1a(rec.key.as_bytes());
        let path = self.record_path(&rec.key);
        let dir = path.parent().expect("record path has a parent");
        fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = encode_record(rec);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::Io(e));
        }
        self.saves.fetch_add(1, Ordering::Relaxed);
        self.shard_of(hash).lock().expect("lru lock").insert(
            rec.key.clone(),
            Arc::new(rec.clone()),
            self.hot_capacity / LRU_SHARDS,
        );
        Ok(())
    }

    /// Hot-tier hits served without touching the filesystem.
    pub fn hot_hits(&self) -> u64 {
        self.hot_hits.load(Ordering::Relaxed)
    }

    /// Records read (and decoded) from disk.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads.load(Ordering::Relaxed)
    }

    /// Records persisted by this handle.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Number of record files currently on disk (walks the directory;
    /// intended for reporting, not hot paths).
    #[must_use]
    pub fn stored_records(&self) -> usize {
        let Ok(shards) = fs::read_dir(&self.root) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|d| fs::read_dir(d.path()).ok())
            .flatten()
            .flatten()
            .filter(|f| f.path().extension().is_some_and(|e| e == "bin"))
            .count()
    }
}

// ---------------------------------------------------------------------
// Binary record codec
// ---------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string fits u32"));
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// Encodes a full record file: header, length-prefixed payload,
/// trailing checksum.
#[must_use]
pub fn encode_record(rec: &StoredChar) -> Vec<u8> {
    let mut p = Enc(Vec::with_capacity(
        256 + 4 * rec.table.as_ref().map_or(0, Vec::len),
    ));
    p.u64(rec.netlist_hash);
    p.str(&rec.key);
    p.u32(rec.bits);
    p.u64(rec.luts);
    p.u64(rec.carry4s);
    p.u64(rec.wasted_sites);
    p.u64(rec.dead_outputs);
    p.u64(rec.ignored_pins);
    p.f64(rec.critical_path_ns);
    p.f64(rec.energy_per_op);
    p.f64(rec.edp);
    let s = &rec.stats;
    p.str(&s.name);
    p.u64(s.samples);
    p.u64(s.error_occurrences);
    p.i64(s.max_error);
    p.u64(s.max_error_occurrences);
    p.f64(s.avg_error);
    p.f64(s.avg_relative_error);
    p.f64(s.error_probability);
    p.f64(s.normalized_mean_error_distance);
    p.f64(s.mean_squared_error);
    p.f64(s.rmse);
    p.u32(u32::try_from(s.worst_case_inputs.len()).expect("witness list fits u32"));
    for &(a, b) in &s.worst_case_inputs {
        p.u64(a);
        p.u64(b);
    }
    match &rec.table {
        None => p.0.push(0),
        Some(t) => {
            p.0.push(1);
            p.u32(u32::try_from(t.len()).expect("table fits u32"));
            for &v in t {
                p.u32(v);
            }
        }
    }
    let payload = p.0;
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(StoreError::Truncated)?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("non-UTF-8 string".to_string()))
    }
}

/// Decodes a record file produced by [`encode_record`].
///
/// # Errors
///
/// Typed [`StoreError`]s: bad magic, unsupported version, truncation,
/// checksum mismatch, or structurally invalid payload.
pub fn decode_record(bytes: &[u8]) -> Result<StoredChar, StoreError> {
    if bytes.len() < 16 {
        return Err(StoreError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != STORE_FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload_len = usize::try_from(payload_len)
        .map_err(|_| StoreError::Corrupt("payload length overflows".to_string()))?;
    let rest = &bytes[16..];
    if rest.len() < payload_len + 8 {
        return Err(StoreError::Truncated);
    }
    let payload = &rest[..payload_len];
    let checksum = u64::from_le_bytes(
        rest[payload_len..payload_len + 8]
            .try_into()
            .expect("8 bytes"),
    );
    if fnv1a(payload) != checksum {
        return Err(StoreError::ChecksumMismatch);
    }
    let mut d = Dec {
        bytes: payload,
        pos: 0,
    };
    let netlist_hash = d.u64()?;
    let key = d.str()?;
    let bits = d.u32()?;
    if !(1..=128).contains(&bits) {
        return Err(StoreError::Corrupt(format!("impossible width {bits}")));
    }
    let luts = d.u64()?;
    let carry4s = d.u64()?;
    let wasted_sites = d.u64()?;
    let dead_outputs = d.u64()?;
    let ignored_pins = d.u64()?;
    let critical_path_ns = d.f64()?;
    let energy_per_op = d.f64()?;
    let edp = d.f64()?;
    let mut stats = ErrorStats {
        name: d.str()?,
        samples: d.u64()?,
        error_occurrences: d.u64()?,
        max_error: d.i64()?,
        max_error_occurrences: d.u64()?,
        avg_error: d.f64()?,
        avg_relative_error: d.f64()?,
        error_probability: d.f64()?,
        normalized_mean_error_distance: d.f64()?,
        mean_squared_error: d.f64()?,
        rmse: d.f64()?,
        worst_case_inputs: Vec::new(),
    };
    let witnesses = d.u32()? as usize;
    if witnesses > 64 {
        return Err(StoreError::Corrupt(format!(
            "witness list length {witnesses} too large"
        )));
    }
    for _ in 0..witnesses {
        let a = d.u64()?;
        let b = d.u64()?;
        stats.worst_case_inputs.push((a, b));
    }
    let table = match d.take(1)?[0] {
        0 => None,
        1 => {
            let len = d.u32()? as usize;
            if len > (1 << 16) {
                return Err(StoreError::Corrupt(format!("table length {len} too large")));
            }
            let mut t = Vec::with_capacity(len);
            for _ in 0..len {
                t.push(d.u32()?);
            }
            Some(t)
        }
        other => {
            return Err(StoreError::Corrupt(format!("bad table marker {other}")));
        }
    };
    if d.pos != payload.len() {
        return Err(StoreError::Corrupt("trailing payload bytes".to_string()));
    }
    Ok(StoredChar {
        key,
        bits,
        netlist_hash,
        luts,
        carry4s,
        wasted_sites,
        dead_outputs,
        ignored_pins,
        critical_path_ns,
        energy_per_op,
        edp,
        stats,
        table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(key: &str, table: Option<Vec<u32>>) -> StoredChar {
        StoredChar {
            key: key.to_string(),
            bits: 4,
            netlist_hash: 0xDEAD_BEEF_0123_4567,
            luts: 11,
            carry4s: 2,
            wasted_sites: 1,
            dead_outputs: 0,
            ignored_pins: 3,
            critical_path_ns: 1.875,
            energy_per_op: 12.5,
            edp: 23.4375,
            stats: ErrorStats {
                name: key.to_string(),
                samples: 256,
                error_occurrences: 81,
                max_error: -12,
                max_error_occurrences: 3,
                avg_error: 1.25,
                avg_relative_error: 0.03125,
                error_probability: 0.31640625,
                normalized_mean_error_distance: 0.005,
                mean_squared_error: 9.5,
                rmse: 3.082_207_001_484_488,
                worst_case_inputs: vec![(7, 6), (13, 13)],
            },
            table: table.clone(),
        }
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        for rec in [
            sample_record("A", Some((0..256).collect())),
            sample_record("(a A A A A)", None),
        ] {
            let decoded = decode_record(&encode_record(&rec)).unwrap();
            assert_eq!(decoded, rec);
            assert_eq!(
                decoded.critical_path_ns.to_bits(),
                rec.critical_path_ns.to_bits()
            );
        }
    }

    #[test]
    fn store_round_trips_through_disk_and_hot_tier() {
        let dir = tempdir("roundtrip");
        let store = DiskStore::open(&dir).unwrap();
        let rec = sample_record("T3", Some((0..256).rev().collect()));
        assert!(store.load("T3").unwrap().is_none());
        store.save(&rec).unwrap();
        // First load is served from the hot tier (save promotes).
        assert_eq!(*store.load("T3").unwrap().unwrap(), rec);
        assert_eq!(store.disk_reads(), 0);
        // A second handle on the same directory must hit the disk.
        let cold = DiskStore::open(&dir).unwrap();
        assert_eq!(*cold.load("T3").unwrap().unwrap(), rec);
        assert_eq!(cold.disk_reads(), 1);
        // ... and serve the repeat from its own hot tier.
        assert_eq!(*cold.load("T3").unwrap().unwrap(), rec);
        assert_eq!(cold.disk_reads(), 1);
        assert_eq!(cold.hot_hits(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_hot_tier_evicts_but_disk_retains() {
        let dir = tempdir("lru");
        let store = DiskStore::open(&dir).unwrap().with_hot_capacity(LRU_SHARDS);
        for i in 0..200 {
            store.save(&sample_record(&format!("K{i}"), None)).unwrap();
        }
        assert_eq!(store.stored_records(), 200);
        // Capacity is 1 record per shard, so most keys were evicted —
        // but every key is still loadable (from disk).
        for i in 0..200 {
            assert!(store.load(&format!("K{i}")).unwrap().is_some(), "K{i}");
        }
        assert!(store.disk_reads() > 0, "eviction must force disk reads");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let full = encode_record(&sample_record("A", Some((0..256).collect())));
        for cut in [0, 3, 8, 15, 16, full.len() / 2, full.len() - 1] {
            let err = decode_record(&full[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated | StoreError::BadMagic),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_magic_version_and_checksum() {
        let rec = sample_record("A", None);
        let mut bad_magic = encode_record(&rec);
        bad_magic[0] = b'Z';
        assert!(matches!(
            decode_record(&bad_magic),
            Err(StoreError::BadMagic)
        ));

        let mut bad_version = encode_record(&rec);
        bad_version[4] = 0xFF;
        assert!(matches!(
            decode_record(&bad_version),
            Err(StoreError::UnsupportedVersion(_))
        ));

        let mut flipped = encode_record(&rec);
        let n = flipped.len();
        flipped[n - 20] ^= 0x40; // payload byte, checksum unchanged
        assert!(matches!(
            decode_record(&flipped),
            Err(StoreError::ChecksumMismatch)
        ));
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "axmul_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }
}
