//! CSV and text rendering of exploration results.

use std::fmt::Write as _;

use axmul_core::behavioral::Summation;

use crate::config::Config;
use crate::search::{CandidateReport, DseResult};

/// Renders every evaluated candidate as CSV (header + one row each),
/// sorted by canonical key.
#[must_use]
pub fn to_csv(result: &DseResult) -> String {
    let mut out = String::from(
        "key,bits,luts,critical_path_ns,energy_per_op,edp,avg_error,\
         avg_relative_error,max_error,error_probability,on_lut_front,on_edp_front\n",
    );
    for r in &result.reports {
        let _ = writeln!(
            out,
            "\"{}\",{},{},{:.6},{:.6},{:.6},{:.6},{:.8},{},{:.8},{},{}",
            r.key,
            r.bits,
            r.luts,
            r.critical_path_ns,
            r.energy_per_op,
            r.edp,
            r.avg_error,
            r.avg_relative_error,
            r.max_error,
            r.error_probability,
            r.on_lut_front,
            r.on_edp_front
        );
    }
    out
}

/// Whether the paper's named configuration survives the sweep, and if
/// not, what dominates it (on the error-vs-LUT axes).
fn paper_verdict(result: &DseResult, bits: u32, summation: Summation) -> String {
    let cfg = Config::paper(bits, summation);
    let key = cfg.key();
    let label = match summation {
        Summation::Accurate => "approx-Ca",
        Summation::CarryFree => "approx-Cc",
    };
    let Some(r) = result.find(&key) else {
        return format!("  {label} {key}: not evaluated in this run\n");
    };
    if r.on_lut_front || r.on_edp_front {
        let fronts = match (r.on_lut_front, r.on_edp_front) {
            (true, true) => "error/LUT and error/EDP fronts",
            (true, false) => "error/LUT front",
            _ => "error/EDP front",
        };
        format!(
            "  {label} {key}: NON-DOMINATED on the {fronts} \
             ({} LUTs, EDP {:.3}, avg rel err {:.6})\n",
            r.luts, r.edp, r.avg_relative_error
        )
    } else {
        let by = result
            .reports
            .iter()
            .filter(|q| {
                q.avg_relative_error <= r.avg_relative_error
                    && q.luts <= r.luts
                    && (q.avg_relative_error < r.avg_relative_error || q.luts < r.luts)
            })
            .min_by(|a, b| a.luts.cmp(&b.luts))
            .map_or_else(|| "?".to_string(), |q| q.key.clone());
        format!(
            "  {label} {key}: dominated (by e.g. {by}; {} LUTs, avg rel err {:.6})\n",
            r.luts, r.avg_relative_error
        )
    }
}

fn front_lines(out: &mut String, front: &[&CandidateReport], cost_label: &str) {
    for r in front {
        let cost = match cost_label {
            "LUTs" => format!("{} LUTs", r.luts),
            _ => format!("EDP {:.3}", r.edp),
        };
        let _ = writeln!(
            out,
            "    {:<24} {cost:<14} avg rel err {:.8}  max |e| {}",
            r.key, r.avg_relative_error, r.max_error
        );
    }
}

/// Human-readable run summary: configuration counts, cache behavior,
/// per-worker throughput, both Pareto fronts, and the verdict on the
/// paper's named configurations.
#[must_use]
pub fn text_report(result: &DseResult) -> String {
    let bits = result.reports.first().map_or(0, |r| r.bits);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "design-space exploration: {} candidates at {bits}x{bits} in {:.2}s",
        result.reports.len(),
        result.elapsed.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "  cache: {} hits / {} misses (hit rate {:.1}%)",
        result.cache_hits,
        result.cache_misses,
        100.0 * result.hit_rate()
    );
    let ct = result.char_time;
    if ct.error + ct.energy + ct.sta > std::time::Duration::ZERO {
        let _ = writeln!(
            out,
            "  characterization: error {:.3}s, energy {:.3}s, STA {:.3}s",
            ct.error.as_secs_f64(),
            ct.energy.as_secs_f64(),
            ct.sta.as_secs_f64()
        );
    }
    if result.pruned() > 0 {
        let _ = writeln!(
            out,
            "  static pruning: {} candidates skipped ({} over the error budget, {} provably dominated)",
            result.pruned(),
            result.pruned_constraint,
            result.pruned_dominance
        );
    }
    for w in &result.workers {
        let _ = writeln!(
            out,
            "  worker {}: {} candidates in {:.2}s ({:.1} cand/s)",
            w.id,
            w.evaluated,
            w.elapsed.as_secs_f64(),
            w.throughput()
        );
    }

    let lut_front = result.lut_front();
    let _ = writeln!(
        out,
        "  error/LUT Pareto front ({} designs):",
        lut_front.len()
    );
    front_lines(&mut out, &lut_front, "LUTs");
    let edp_front = result.edp_front();
    let _ = writeln!(
        out,
        "  error/EDP Pareto front ({} designs):",
        edp_front.len()
    );
    front_lines(&mut out, &edp_front, "EDP");

    if bits >= 8 {
        out.push_str("  paper configurations:\n");
        out.push_str(&paper_verdict(result, bits, Summation::Accurate));
        out.push_str(&paper_verdict(result, bits, Summation::CarryFree));
    }
    out
}
