//! The configuration space: recursive multiplier configurations as a
//! tree of per-sub-block choices.
//!
//! A [`Config`] is either a 4×4 *leaf* (one of the [`Leaf`] kernel
//! choices) or a *quad* node combining four sub-configurations — the
//! `AL·BL`, `AH·BL`, `AL·BH`, `AH·BH` quadrants — with one of the
//! paper's two summation schemes. An 8×8 configuration is a quad of
//! leaves; a 16×16 configuration is a quad of 8×8 quads, and so on.
//!
//! Every configuration has a *canonical key* ([`Config::key`]) that
//! serializes the tree uniquely: `X`, `A`, `T1`–`T3` for leaves and
//! `(a LL HL LH HH)` / `(c …)` for accurate / carry-free quads. The key
//! is the memoization handle of the characterization cache.

use std::fmt;

use axmul_baselines::{array_mult_netlist, pp_truncated_netlist};
use axmul_core::behavioral::Summation;
use axmul_core::structural::{approx_4x4_netlist, compose_quad_netlist};
use axmul_fabric::Netlist;
use rand::Rng;

/// Width of the leaf kernels (the recursion terminates at 4×4).
pub const LEAF_BITS: u32 = 4;

/// The 4×4 kernel choices at the bottom of the recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Leaf {
    /// Exact 4×4 array multiplier.
    Exact,
    /// The paper's approximate 4×4 multiplier (Table 3 INITs).
    Approx,
    /// Partial-product truncation: product bits below weight `k` are
    /// dropped (`1 ≤ k ≤ 3`).
    Truncated(u32),
}

impl Leaf {
    /// All supported leaf choices, in canonical enumeration order.
    pub const ALL: [Leaf; 5] = [
        Leaf::Exact,
        Leaf::Approx,
        Leaf::Truncated(1),
        Leaf::Truncated(2),
        Leaf::Truncated(3),
    ];

    /// Canonical single-token code: `X`, `A`, `T1`, `T2`, `T3`.
    #[must_use]
    pub fn code(self) -> String {
        match self {
            Leaf::Exact => "X".to_string(),
            Leaf::Approx => "A".to_string(),
            Leaf::Truncated(k) => format!("T{k}"),
        }
    }

    /// Builds the leaf's structural netlist.
    ///
    /// # Panics
    ///
    /// Panics on `Truncated(k)` with `k` outside `1..=3`.
    #[must_use]
    pub fn netlist(self) -> Netlist {
        match self {
            Leaf::Exact => array_mult_netlist(LEAF_BITS, LEAF_BITS),
            Leaf::Approx => approx_4x4_netlist(),
            Leaf::Truncated(k) => {
                assert!((1..=3).contains(&k), "truncation depth {k} out of range");
                pp_truncated_netlist(LEAF_BITS, LEAF_BITS, k)
            }
        }
    }
}

/// One recursive multiplier configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Config {
    /// A 4×4 kernel.
    Leaf(Leaf),
    /// A `2M×2M` node built from four `M×M` sub-configurations
    /// (`LL`, `HL`, `LH`, `HH` order) and a summation scheme.
    Quad {
        /// Summation combining the four quadrant products.
        summation: Summation,
        /// The quadrant sub-configurations.
        sub: Box<[Config; 4]>,
    },
}

impl Config {
    /// Operand width of this configuration in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        match self {
            Config::Leaf(_) => LEAF_BITS,
            Config::Quad { sub, .. } => 2 * sub[0].bits(),
        }
    }

    /// Canonical serialization; equal keys ⇔ identical configurations.
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            Config::Leaf(l) => l.code(),
            Config::Quad { summation, sub } => {
                let tag = match summation {
                    Summation::Accurate => 'a',
                    Summation::CarryFree => 'c',
                };
                format!(
                    "({tag} {} {} {} {})",
                    sub[0].key(),
                    sub[1].key(),
                    sub[2].key(),
                    sub[3].key()
                )
            }
        }
    }

    /// Quad node over four identical sub-configurations.
    #[must_use]
    pub fn uniform(sub: Config, summation: Summation) -> Self {
        Config::Quad {
            summation,
            sub: Box::new([sub.clone(), sub.clone(), sub.clone(), sub]),
        }
    }

    /// The paper's homogeneous approx-Ca / approx-Cc configuration at
    /// `bits` (4, 8, 16, …): all-approximate leaves, one summation
    /// everywhere.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is a power of two ≥ 4.
    #[must_use]
    pub fn paper(bits: u32, summation: Summation) -> Self {
        assert!(
            bits >= LEAF_BITS && bits.is_power_of_two(),
            "unsupported width {bits}"
        );
        let mut cfg = Config::Leaf(Leaf::Approx);
        let mut w = LEAF_BITS;
        while w < bits {
            cfg = Config::uniform(cfg, summation);
            w *= 2;
        }
        cfg
    }

    /// Assembles the configuration's structural netlist (named by its
    /// canonical key). Prefer the characterization cache for repeated
    /// builds — this walks the whole tree every call.
    #[must_use]
    pub fn assemble(&self) -> Netlist {
        match self {
            Config::Leaf(l) => l.netlist(),
            Config::Quad { summation, sub } => {
                let parts: Vec<Netlist> = sub.iter().map(Config::assemble).collect();
                compose_quad_netlist(
                    self.key(),
                    &parts[0],
                    &parts[1],
                    &parts[2],
                    &parts[3],
                    *summation,
                )
            }
        }
    }

    /// Enumerates every configuration of the given width: `5^(4^d) × 2^…`
    /// grows doubly exponentially, so this is only feasible for
    /// `bits = 4` (5 configs) and `bits = 8` (1250 configs).
    ///
    /// # Panics
    ///
    /// Panics for `bits > 8` — use [`Config::random`] or the hill-climb
    /// strategy there.
    #[must_use]
    pub fn enumerate(bits: u32) -> Vec<Config> {
        match bits {
            4 => Leaf::ALL.iter().copied().map(Config::Leaf).collect(),
            8 => {
                let leaves = Config::enumerate(4);
                let mut out = Vec::with_capacity(2 * leaves.len().pow(4));
                for summation in [Summation::Accurate, Summation::CarryFree] {
                    for ll in &leaves {
                        for hl in &leaves {
                            for lh in &leaves {
                                for hh in &leaves {
                                    out.push(Config::Quad {
                                        summation,
                                        sub: Box::new([
                                            ll.clone(),
                                            hl.clone(),
                                            lh.clone(),
                                            hh.clone(),
                                        ]),
                                    });
                                }
                            }
                        }
                    }
                }
                out
            }
            _ => panic!("exhaustive enumeration is infeasible beyond 8 bits (got {bits})"),
        }
    }

    /// Draws a uniform-random configuration of the given width.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is a power of two ≥ 4.
    pub fn random(bits: u32, rng: &mut impl Rng) -> Self {
        assert!(
            bits >= LEAF_BITS && bits.is_power_of_two(),
            "unsupported width {bits}"
        );
        if bits == LEAF_BITS {
            return Config::Leaf(Leaf::ALL[rng.random_range(0..Leaf::ALL.len())]);
        }
        let summation = if rng.random::<bool>() {
            Summation::Accurate
        } else {
            Summation::CarryFree
        };
        let m = bits / 2;
        Config::Quad {
            summation,
            sub: Box::new([
                Config::random(m, rng),
                Config::random(m, rng),
                Config::random(m, rng),
                Config::random(m, rng),
            ]),
        }
    }

    /// Returns a copy with one random local change: either one leaf
    /// swapped for a different kernel, or one quad node's summation
    /// flipped. This is the hill-climb neighborhood.
    pub fn mutate(&self, rng: &mut impl Rng) -> Self {
        let mut next = self.clone();
        let sites = next.count_sites();
        let target = rng.random_range(0..sites);
        next.mutate_site(target, rng);
        next
    }

    /// Number of mutable sites (leaves + quad summations) in the tree.
    fn count_sites(&self) -> usize {
        match self {
            Config::Leaf(_) => 1,
            Config::Quad { sub, .. } => 1 + sub.iter().map(Config::count_sites).sum::<usize>(),
        }
    }

    /// Applies a mutation to the `target`-th site (pre-order numbering).
    fn mutate_site(&mut self, target: usize, rng: &mut impl Rng) {
        match self {
            Config::Leaf(l) => {
                debug_assert_eq!(target, 0);
                let mut pick = *l;
                while pick == *l {
                    pick = Leaf::ALL[rng.random_range(0..Leaf::ALL.len())];
                }
                *l = pick;
            }
            Config::Quad { summation, sub } => {
                if target == 0 {
                    *summation = match summation {
                        Summation::Accurate => Summation::CarryFree,
                        Summation::CarryFree => Summation::Accurate,
                    };
                    return;
                }
                let mut rest = target - 1;
                for s in sub.iter_mut() {
                    let n = s.count_sites();
                    if rest < n {
                        s.mutate_site(rest, rng);
                        return;
                    }
                    rest -= n;
                }
                unreachable!("site index out of range");
            }
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// Error parsing a canonical configuration key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    message: String,
}

impl ParseConfigError {
    fn new(message: impl Into<String>) -> Self {
        ParseConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad configuration key: {}", self.message)
    }
}

impl std::error::Error for ParseConfigError {}

/// Widest parseable configuration: depth 5 above the 4-bit leaves, i.e.
/// 128×128. Guards the recursive parser against hostile input depth.
const MAX_PARSE_BITS: u32 = 128;

/// Parses the canonical key syntax emitted by [`Config::key`]:
/// leaf codes `X`, `A`, `T1`–`T3`, quads `(a LL HL LH HH)` /
/// `(c LL HL LH HH)`. The round trip `key → parse → key` is exact.
impl std::str::FromStr for Config {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut tokens = tokenize(s);
        let cfg = parse_node(&mut tokens)?;
        if let Some(extra) = tokens.next() {
            return Err(ParseConfigError::new(format!(
                "trailing input after configuration: `{extra}`"
            )));
        }
        Ok(cfg)
    }
}

/// Splits a key into `(`, `)` and atom tokens.
fn tokenize(s: &str) -> std::vec::IntoIter<String> {
    let mut tokens = Vec::new();
    let mut atom = String::new();
    for c in s.chars() {
        match c {
            '(' | ')' => {
                if !atom.is_empty() {
                    tokens.push(std::mem::take(&mut atom));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !atom.is_empty() {
                    tokens.push(std::mem::take(&mut atom));
                }
            }
            c => atom.push(c),
        }
    }
    if !atom.is_empty() {
        tokens.push(atom);
    }
    tokens.into_iter()
}

fn parse_node(tokens: &mut std::vec::IntoIter<String>) -> Result<Config, ParseConfigError> {
    let Some(tok) = tokens.next() else {
        return Err(ParseConfigError::new("empty input"));
    };
    match tok.as_str() {
        "(" => {
            let summation = match tokens.next().as_deref() {
                Some("a") => Summation::Accurate,
                Some("c") => Summation::CarryFree,
                Some(other) => {
                    return Err(ParseConfigError::new(format!(
                        "expected summation tag `a` or `c`, found `{other}`"
                    )))
                }
                None => return Err(ParseConfigError::new("unterminated quad")),
            };
            let sub = [
                parse_node(tokens)?,
                parse_node(tokens)?,
                parse_node(tokens)?,
                parse_node(tokens)?,
            ];
            match tokens.next().as_deref() {
                Some(")") => {}
                Some(other) => {
                    return Err(ParseConfigError::new(format!(
                        "expected `)`, found `{other}`"
                    )))
                }
                None => return Err(ParseConfigError::new("unterminated quad")),
            }
            let bits = sub[0].bits();
            if sub.iter().any(|s| s.bits() != bits) {
                return Err(ParseConfigError::new(
                    "quad sub-blocks must all have the same width",
                ));
            }
            if 2 * bits > MAX_PARSE_BITS {
                return Err(ParseConfigError::new(format!(
                    "configuration wider than {MAX_PARSE_BITS} bits"
                )));
            }
            Ok(Config::Quad {
                summation,
                sub: Box::new(sub),
            })
        }
        ")" => Err(ParseConfigError::new("unexpected `)`")),
        "X" => Ok(Config::Leaf(Leaf::Exact)),
        "A" => Ok(Config::Leaf(Leaf::Approx)),
        "T1" => Ok(Config::Leaf(Leaf::Truncated(1))),
        "T2" => Ok(Config::Leaf(Leaf::Truncated(2))),
        "T3" => Ok(Config::Leaf(Leaf::Truncated(3))),
        other => Err(ParseConfigError::new(format!(
            "unknown leaf code `{other}` (expected X, A, T1, T2 or T3)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn enumerate_8x8_space_size() {
        let all = Config::enumerate(8);
        assert_eq!(all.len(), 2 * 5usize.pow(4)); // 1250
        let keys: HashSet<String> = all.iter().map(Config::key).collect();
        assert_eq!(keys.len(), all.len(), "keys must be unique");
        assert!(all.iter().all(|c| c.bits() == 8));
    }

    #[test]
    fn paper_configs_have_expected_keys() {
        assert_eq!(Config::paper(8, Summation::Accurate).key(), "(a A A A A)");
        assert_eq!(Config::paper(8, Summation::CarryFree).key(), "(c A A A A)");
        assert_eq!(
            Config::paper(16, Summation::Accurate).key(),
            "(a (a A A A A) (a A A A A) (a A A A A) (a A A A A))"
        );
    }

    #[test]
    fn paper_configs_assemble_to_table4_areas() {
        let ca8 = Config::paper(8, Summation::Accurate).assemble();
        assert_eq!(ca8.lut_count(), 57);
        let cc8 = Config::paper(8, Summation::CarryFree).assemble();
        assert_eq!(cc8.lut_count(), 56);
        let ca16 = Config::paper(16, Summation::Accurate).assemble();
        assert_eq!(ca16.lut_count(), 245);
    }

    #[test]
    fn random_configs_are_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            assert_eq!(Config::random(16, &mut r1), Config::random(16, &mut r2));
        }
    }

    #[test]
    fn mutation_changes_exactly_one_site() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let cfg = Config::random(8, &mut rng);
            let mutant = cfg.mutate(&mut rng);
            assert_ne!(cfg.key(), mutant.key(), "mutation must change the config");
            assert_eq!(mutant.bits(), cfg.bits());
            // Keys differ in exactly one token.
            let (ka, kb) = (cfg.key(), mutant.key());
            let a: Vec<&str> = ka.split_whitespace().collect();
            let b: Vec<&str> = kb.split_whitespace().collect();
            // Summation flips change one char inside a token, leaf swaps
            // change one token; both keep the token count.
            assert_eq!(a.len(), b.len());
            let diffs = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert_eq!(diffs, 1, "{} vs {}", cfg.key(), mutant.key());
        }
    }

    #[test]
    fn parse_round_trips_every_8x8_key() {
        for cfg in Config::enumerate(8) {
            let parsed: Config = cfg.key().parse().unwrap();
            assert_eq!(parsed, cfg);
            assert_eq!(parsed.key(), cfg.key());
        }
    }

    #[test]
    fn parse_round_trips_random_wide_keys() {
        let mut rng = StdRng::seed_from_u64(0xC0F);
        for _ in 0..50 {
            let cfg = Config::random(32, &mut rng);
            let parsed: Config = cfg.key().parse().unwrap();
            assert_eq!(parsed, cfg);
        }
    }

    #[test]
    fn parse_tolerates_flexible_whitespace() {
        let cfg: Config = "  (a\t(c X T1 T2 T3)  (a A A A A)\n (a X X X X) (c T2 T2 T2 T2))  "
            .parse()
            .unwrap();
        assert_eq!(
            cfg.key(),
            "(a (c X T1 T2 T3) (a A A A A) (a X X X X) (c T2 T2 T2 T2))"
        );
    }

    #[test]
    fn parse_rejects_malformed_keys() {
        for bad in [
            "",
            "Q",
            "T4",
            "(a A A A)",
            "(a A A A A A)",
            "(b A A A A)",
            "(a A A A A",
            "a A A A A)",
            "(a A A A A) X",
            "(a A A (a A A A A) A)", // mixed sub-block widths
            "()",
            ")",
        ] {
            assert!(bad.parse::<Config>().is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn parse_rejects_over_deep_trees() {
        let mut key = "A".to_string();
        for _ in 0..8 {
            key = format!("(a {key} {key} {key} {key})");
        }
        let err = key.parse::<Config>().unwrap_err();
        assert!(err.to_string().contains("wider"), "{err}");
    }

    #[test]
    fn leaf_netlists_have_multiplier_shape() {
        for leaf in Leaf::ALL {
            let nl = leaf.netlist();
            let buses = nl.input_buses();
            assert_eq!(buses.len(), 2, "{leaf:?}");
            assert_eq!(buses[0].1.len(), 4);
            assert_eq!(buses[1].1.len(), 4);
        }
    }
}
