//! Exactness and invariance properties of the DSE engine.
//!
//! The central claim: the memoized composition (value tables combined
//! with `combine_products`) predicts a configuration's error statistics
//! **exactly** — bit-identical, float fields included, to sweeping the
//! assembled gate-level netlist with [`ErrorStats::exhaustive_wide`].

use axmul_core::behavioral::Summation;
use axmul_dse::{
    evaluate, run, static_bounds, text_report, to_csv, CharCache, Config, DseOptions, Leaf,
    PruneOptions, Strategy,
};
use axmul_fabric::cost::Characterizer;
use axmul_fabric::sim::WideSim;
use axmul_metrics::ErrorStats;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A stratified sample of the 8×8 space: every homogeneous quad, the
/// paper's two named designs, and seeded-random heterogeneous configs.
fn stratified_8x8(random: usize) -> Vec<Config> {
    let mut configs = Vec::new();
    for summation in [Summation::Accurate, Summation::CarryFree] {
        for leaf in Leaf::ALL {
            configs.push(Config::uniform(Config::Leaf(leaf), summation));
        }
    }
    let mut rng = StdRng::seed_from_u64(0xD5E);
    for _ in 0..random {
        configs.push(Config::random(8, &mut rng));
    }
    configs.sort_by_key(Config::key);
    configs.dedup_by_key(|c| c.key());
    configs
}

fn assert_stats_match_netlist(cache: &CharCache, cfg: &Config) {
    let c = cache.characterize(cfg).unwrap();
    let wide = ErrorStats::exhaustive_wide(&c.netlist).unwrap();
    // Full structural equality: every field including the float
    // accumulators and the name (both are the canonical key).
    assert_eq!(c.stats, wide, "composed stats diverge for {}", cfg.key());
}

#[test]
fn composed_stats_exactly_match_netlist_sweep_stratified() {
    let cache = CharCache::new(Characterizer::virtex7());
    for cfg in stratified_8x8(12) {
        assert_stats_match_netlist(&cache, &cfg);
    }
}

/// The full 1250-configuration version of the property above. Runs in
/// a couple of minutes in debug, so it is ignored by default; execute
/// with `cargo test --release -p axmul-dse -- --ignored`.
#[test]
#[ignore = "full 8x8 space sweep; run in release"]
fn composed_stats_exactly_match_netlist_sweep_all_1250() {
    let cache = CharCache::new(Characterizer::virtex7());
    for cfg in Config::enumerate(8) {
        assert_stats_match_netlist(&cache, &cfg);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random heterogeneous 8×8 configurations keep the exactness
    /// property (drawn independently of the stratified sample).
    #[test]
    fn composed_stats_match_netlist_sweep_random(seed in 0u64..1 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Config::random(8, &mut rng);
        let cache = CharCache::new(Characterizer::virtex7());
        let c = cache.characterize(&cfg).unwrap();
        let wide = ErrorStats::exhaustive_wide(&c.netlist).unwrap();
        prop_assert_eq!(&c.stats, &wide);
    }

    /// 16×16 value tables are too big to enumerate, but the composed
    /// evaluator must still agree with the assembled netlist on any
    /// operand pair.
    #[test]
    fn composed_evaluator_matches_netlist_at_16_bits(seed in 0u64..1 << 48) {
        use axmul_core::Multiplier;
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Config::random(16, &mut rng);
        let cache = CharCache::new(Characterizer::virtex7());
        let c = cache.characterize(&cfg).unwrap();
        let m = c.multiplier();
        let mut sim = WideSim::new(&c.netlist);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 16
        };
        let a: Vec<u64> = (0..64).map(|_| next() & 0xFFFF).collect();
        let b: Vec<u64> = (0..64).map(|_| next() & 0xFFFF).collect();
        let out = sim.eval(&[&a, &b]).unwrap();
        for k in 0..64 {
            prop_assert_eq!(out[0][k], m.multiply(a[k], b[k]));
        }
    }
}

#[test]
fn cache_accounting_is_exact_for_single_worker_exhaustive() {
    let cache = CharCache::new(Characterizer::virtex7());
    let candidates = stratified_8x8(0); // 10 homogeneous quads
    for cfg in &candidates {
        cache.characterize(cfg).unwrap();
    }
    // 10 quads + 5 leaves computed once each; each quad makes 4 leaf
    // queries, the first 5 of which are the leaf misses.
    assert_eq!(cache.misses(), 15);
    assert_eq!(cache.hits(), 4 * 10 - 5);
    assert_eq!(cache.len(), 15);
    // Re-characterizing everything is pure hits.
    for cfg in &candidates {
        cache.characterize(cfg).unwrap();
    }
    assert_eq!(cache.misses(), 15);
    assert_eq!(cache.hits(), 4 * 10 - 5 + 10);
}

#[test]
fn worker_count_does_not_change_results() {
    let candidates = stratified_8x8(6);
    let mut opts = DseOptions::exhaustive_8x8();
    opts.workers = 1;
    let one = evaluate(&opts, &candidates).unwrap();
    opts.workers = 3;
    let three = evaluate(&opts, &candidates).unwrap();
    assert_eq!(one.reports, three.reports);
    assert_eq!(three.workers.len(), 3);
    assert_eq!(
        three.workers.iter().map(|w| w.evaluated).sum::<usize>(),
        candidates.len()
    );
}

#[test]
fn paper_configs_characterize_to_table4_and_reports_render() {
    let candidates = stratified_8x8(4);
    let opts = DseOptions::exhaustive_8x8();
    let result = evaluate(&opts, &candidates).unwrap();

    let ca = result.find("(a A A A A)").expect("approx-Ca evaluated");
    assert_eq!(ca.luts, 57);
    let cc = result.find("(c A A A A)").expect("approx-Cc evaluated");
    assert_eq!(cc.luts, 56);
    let exact = result.find("(a X X X X)").expect("exact-Ca evaluated");
    assert_eq!(exact.avg_error, 0.0);
    assert!(
        exact.on_lut_front,
        "zero-error design is always non-dominated"
    );

    let text = text_report(&result);
    assert!(text.contains("hit rate"));
    assert!(text.contains("cand/s"));
    assert!(text.contains("approx-Ca"));
    assert!(text.contains("approx-Cc"));
    assert!(text.contains("error/LUT Pareto front"));
    assert!(text.contains("error/EDP Pareto front"));

    let csv = to_csv(&result);
    assert_eq!(csv.lines().count(), result.reports.len() + 1);
    assert!(csv.starts_with("key,bits,luts"));
    assert!(csv.contains("\"(a A A A A)\",8,57,"));
}

#[test]
fn random_strategy_is_deterministic_and_respects_budget() {
    let mut opts = DseOptions::exhaustive_8x8();
    opts.strategy = Strategy::Random {
        budget: 15,
        seed: 42,
    };
    let a = run(&opts).unwrap();
    let b = run(&opts).unwrap();
    assert_eq!(a.reports, b.reports);
    assert!(a.reports.len() <= 15);
    assert!(!a.reports.is_empty());
}

#[test]
fn static_bounds_bracket_exact_stats_stratified() {
    let cache = CharCache::new(Characterizer::virtex7());
    for cfg in stratified_8x8(12) {
        let c = cache.characterize(&cfg).unwrap();
        let a = static_bounds(&cfg).unwrap();
        let wce = c.stats.max_error.unsigned_abs() as u128;
        assert!(
            a.bound.wce_lb <= wce && wce <= a.bound.wce_ub(),
            "{}: exact WCE {wce} outside static bracket [{}, {}]",
            cfg.key(),
            a.bound.wce_lb,
            a.bound.wce_ub()
        );
        assert!(a.certificate.verify().is_ok(), "{}", cfg.key());
    }
}

#[test]
fn constraint_pruning_is_admissible_on_random_8x8() {
    let mut opts = DseOptions::exhaustive_8x8();
    opts.strategy = Strategy::Random {
        budget: 60,
        seed: 7,
    };
    opts.workers = 2;
    let full = run(&opts).unwrap();

    let tau: u128 = 2000;
    opts.prune = Some(PruneOptions::max_wce(tau));
    let screened = run(&opts).unwrap();

    // The draw includes designs whose lower bound alone exceeds the
    // budget (e.g. anything with an approximate HH quadrant).
    assert!(screened.pruned_constraint > 0, "nothing was pruned");
    assert_eq!(screened.pruned_dominance, 0);
    // Admissible: every design that actually meets the budget survives
    // the screen …
    for r in &full.reports {
        if r.max_error.unsigned_abs() as u128 <= tau {
            assert!(
                screened.find(&r.key).is_some(),
                "feasible design {} was wrongly pruned",
                r.key
            );
        }
    }
    // … and the screen only ever removes candidates (same draw).
    for r in &screened.reports {
        assert!(full.find(&r.key).is_some());
    }
    assert_eq!(
        screened.reports.len() as u64 + screened.pruned(),
        full.reports.len() as u64
    );
}

#[test]
fn pruned_hill_climb_at_16x16_skips_provably_bad_mutants() {
    let mut opts = DseOptions::exhaustive_8x8();
    opts.bits = 16;
    opts.strategy = Strategy::HillClimb {
        budget: 8,
        restarts: 1,
        seed: 0xDAC18,
    };
    opts.workers = 1;
    opts.samples = 4096;
    opts.prune = Some(PruneOptions {
        max_wce: Some(1 << 20),
        dominance: true,
    });
    let result = run(&opts).unwrap();
    assert!(
        result.pruned() > 0,
        "a 16x16 random walk must hit statically-bad mutants"
    );
    // Single worker + fixed seed: the pruned run is reproducible.
    let again = run(&opts).unwrap();
    assert_eq!(result.reports, again.reports);
    assert_eq!(result.pruned(), again.pruned());
    let report = text_report(&result);
    assert!(report.contains("static pruning:"), "{report}");
}

#[test]
fn hill_climb_explores_and_keeps_whole_trace() {
    let mut opts = DseOptions::exhaustive_8x8();
    opts.strategy = Strategy::HillClimb {
        budget: 10,
        restarts: 2,
        seed: 9,
    };
    opts.workers = 2;
    let result = run(&opts).unwrap();
    // 2 restarts x (1 start + 10 steps) = 22 evaluations, minus
    // trajectory revisits after dedup.
    assert!(result.reports.len() > 2);
    assert!(result.reports.len() <= 22);
    assert!(!result.lut_front().is_empty());
    let again = run(&opts).unwrap();
    assert_eq!(result.reports, again.reports);
}
