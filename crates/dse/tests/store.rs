//! Persistence properties of the on-disk characterization store.
//!
//! The central claims: a warm start over a fully persisted roster
//! performs **zero** recharacterizations and returns bit-identical
//! results, and no amount of on-disk damage — truncation, garbage,
//! stale version hashes — can panic the cache or corrupt its output:
//! every failure mode is a typed error followed by a clean rebuild.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use axmul_core::Multiplier;
use axmul_dse::store::decode_record;
use axmul_dse::{CharCache, Config, DiskStore, StoreError};
use axmul_fabric::cost::Characterizer;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "axmul_store_it_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn roster() -> Vec<Config> {
    [
        "A",
        "X",
        "T2",
        "(a A A A A)",
        "(c A A A A)",
        "(a T3 A X X)",
        "(c X T1 T2 T3)",
    ]
    .iter()
    .map(|k| k.parse().unwrap())
    .collect()
}

fn warm_cache(dir: &PathBuf) -> CharCache {
    let store = Arc::new(DiskStore::open(dir).unwrap());
    CharCache::new(Characterizer::virtex7()).with_store(store)
}

#[test]
fn warm_start_is_bit_identical_with_zero_builds() {
    let dir = tempdir("warm");
    let cold = warm_cache(&dir);
    let cold_chars: Vec<_> = roster()
        .iter()
        .map(|c| cold.characterize(c).unwrap())
        .collect();
    assert!(cold.builds() > 0);
    assert_eq!(cold.disk_hits(), 0);
    assert_eq!(cold.store_failures(), 0, "{:?}", cold.last_store_error());

    let warm = warm_cache(&dir);
    for (cfg, cold_char) in roster().iter().zip(&cold_chars) {
        let w = warm.characterize(cfg).unwrap();
        // Full bit-level equality: error statistics (floats included
        // via PartialEq on every field), hardware cost, and the
        // composed value tables.
        assert_eq!(w.stats, cold_char.stats, "{}", cfg.key());
        assert_eq!(
            w.stats.avg_relative_error.to_bits(),
            cold_char.stats.avg_relative_error.to_bits()
        );
        assert_eq!(w.cost, cold_char.cost, "{}", cfg.key());
        assert_eq!(w.table, cold_char.table, "{}", cfg.key());
        let (wm, cm) = (w.multiplier(), cold_char.multiplier());
        for (a, b) in [(0u64, 0u64), (3, 7), (13, 11), (255, 254), (129, 77)] {
            assert_eq!(wm.multiply(a, b), cm.multiply(a, b));
        }
    }
    assert_eq!(warm.builds(), 0, "warm start must not recharacterize");
    assert!(warm.disk_hits() > 0);
    assert_eq!(warm.store_failures(), 0, "{:?}", warm.last_store_error());
    let _ = fs::remove_dir_all(&dir);
}

/// Damages the stored record for `key` with `f`, then asserts that a
/// fresh cache (a) yields the expected typed error when loading the
/// record directly, and (b) transparently rebuilds correct results.
fn assert_recovers(tag: &str, key: &str, damage: impl Fn(&PathBuf), check: impl Fn(&StoreError)) {
    let cfg: Config = key.parse().unwrap();
    let dir = tempdir(tag);
    let cold = warm_cache(&dir);
    let reference = cold.characterize(&cfg).unwrap();

    let store = DiskStore::open(&dir).unwrap();
    let path = store.record_path(key);
    assert!(path.is_file(), "record for {key} must exist at {path:?}");
    damage(&path);

    // (a) the store surfaces a typed error, never a panic.
    match store.load(key) {
        Err(e) => check(&e),
        Ok(rec) => panic!("damaged record for {key} loaded: {rec:?}"),
    }

    // (b) the cache falls back to a clean rebuild with identical stats,
    // and heals the store for the next run.
    let recovering = warm_cache(&dir);
    let rebuilt = recovering.characterize(&cfg).unwrap();
    assert!(recovering.store_failures() > 0);
    assert_eq!(rebuilt.stats, reference.stats);
    assert_eq!(rebuilt.cost, reference.cost);

    let healed = warm_cache(&dir);
    let restored = healed.characterize(&cfg).unwrap();
    assert_eq!(restored.stats, reference.stats);
    assert_eq!(
        healed.store_failures(),
        0,
        "{:?}",
        healed.last_store_error()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_shard_yields_typed_error_and_clean_rebuild() {
    assert_recovers(
        "trunc",
        "A",
        |path| {
            let bytes = fs::read(path).unwrap();
            fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
        },
        |e| assert!(matches!(e, StoreError::Truncated), "{e}"),
    );
}

#[test]
fn garbage_bytes_yield_typed_error_and_clean_rebuild() {
    assert_recovers(
        "garbage",
        "T1",
        |path| fs::write(path, b"not a characterization record at all").unwrap(),
        |e| assert!(matches!(e, StoreError::BadMagic), "{e}"),
    );
}

#[test]
fn flipped_payload_byte_yields_checksum_error_and_clean_rebuild() {
    assert_recovers(
        "checksum",
        "T3",
        |path| {
            let mut bytes = fs::read(path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x5A;
            fs::write(path, bytes).unwrap();
        },
        |e| assert!(matches!(e, StoreError::ChecksumMismatch), "{e}"),
    );
}

#[test]
fn unsupported_record_version_yields_typed_error_and_clean_rebuild() {
    assert_recovers(
        "version",
        "X",
        |path| {
            let mut bytes = fs::read(path).unwrap();
            bytes[4] = 0xEE; // format-version field, little-endian
            fs::write(path, bytes).unwrap();
        },
        |e| assert!(matches!(e, StoreError::UnsupportedVersion(_)), "{e}"),
    );
}

#[test]
fn wrong_netlist_hash_is_rejected_as_stale_and_rebuilt() {
    let key = "(a A A A A)";
    let cfg: Config = key.parse().unwrap();
    let dir = tempdir("stale");
    let cold = warm_cache(&dir);
    let reference = cold.characterize(&cfg).unwrap();

    // Re-encode the record with a flipped netlist hash: structurally a
    // perfectly valid record, but for a different netlist generation.
    let store = DiskStore::open(&dir).unwrap();
    let path = store.record_path(key);
    let mut rec = (*store.load(key).unwrap().unwrap()).clone();
    rec.netlist_hash ^= 0xFFFF_FFFF_FFFF_FFFF;
    let store2 = DiskStore::open(&dir).unwrap();
    store2.save(&rec).unwrap();
    // The store itself cannot know the expected hash — decode succeeds.
    assert!(decode_record(&fs::read(&path).unwrap()).is_ok());

    // The cache compares against the freshly assembled netlist and
    // rebuilds (quad record is stale; its four `A` leaf records are
    // intact, so leaves restore and only the quad recharacterizes).
    let recovering = warm_cache(&dir);
    let rebuilt = recovering.characterize(&cfg).unwrap();
    assert!(recovering.store_failures() > 0);
    assert!(recovering
        .last_store_error()
        .is_some_and(|m| m.contains("stale")));
    assert_eq!(rebuilt.stats, reference.stats);
    assert_eq!(rebuilt.cost, reference.cost);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn store_survives_concurrent_cache_populations() {
    let dir = tempdir("concurrent");
    let configs = roster();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let cache = warm_cache(&dir);
                for cfg in &configs {
                    cache.characterize(cfg).unwrap();
                }
            });
        }
    });
    let warm = warm_cache(&dir);
    for cfg in &configs {
        warm.characterize(cfg).unwrap();
    }
    assert_eq!(warm.builds(), 0);
    assert_eq!(warm.store_failures(), 0, "{:?}", warm.last_store_error());
    let _ = fs::remove_dir_all(&dir);
}
