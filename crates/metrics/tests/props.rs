//! Property-based tests of the metrics engine.

use axmul_baselines::Truncated;
use axmul_core::Exact;
use axmul_metrics::{bit_accuracy, pareto_front, DesignPoint, ErrorPmf, ErrorStats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stats invariants hold for arbitrary truncation configurations.
    #[test]
    fn stats_invariants(bits in 2u32..9, lsbs_frac in 0u32..100) {
        let lsbs = lsbs_frac % (2 * bits);
        let m = Truncated::new(bits, lsbs);
        let s = ErrorStats::exhaustive(&m);
        prop_assert_eq!(s.samples, 1u64 << (2 * bits));
        prop_assert!(s.error_probability >= 0.0 && s.error_probability <= 1.0);
        prop_assert!(s.avg_error <= s.max_error as f64);
        prop_assert!(s.avg_relative_error >= 0.0);
        prop_assert!(s.max_error < 1i64 << lsbs.max(1));
        prop_assert!((s.error_probability - s.error_occurrences as f64 / s.samples as f64).abs() < 1e-12);
        // NMED is the MED normalized by the max product.
        let maxp = ((1u64 << bits) - 1).pow(2) as f64;
        prop_assert!((s.normalized_mean_error_distance - s.avg_error / maxp).abs() < 1e-12);
    }

    /// The PMF accounts for every operand pair: zero-count plus all
    /// error counts equals the sample count, and the error counts equal
    /// the stats' occurrence count.
    #[test]
    fn pmf_totals(bits in 2u32..9, lsbs_frac in 0u32..100) {
        let lsbs = lsbs_frac % (2 * bits);
        let m = Truncated::new(bits, lsbs);
        let pmf = ErrorPmf::exhaustive(&m);
        let stats = ErrorStats::exhaustive(&m);
        let err_total: u64 = pmf.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(err_total, stats.error_occurrences);
        prop_assert_eq!(pmf.count(0) + err_total, stats.samples);
    }

    /// Bit-accuracy profiles are probabilities and are zero exactly
    /// where no error ever lands.
    #[test]
    fn bit_profiles_are_probabilities(bits in 2u32..9) {
        let m = Truncated::new(bits, bits / 2);
        let profile = bit_accuracy(&m);
        prop_assert_eq!(profile.len(), (2 * bits) as usize);
        for p in &profile {
            prop_assert!((0.0..=1.0).contains(p));
        }
        for (i, p) in profile.iter().enumerate() {
            if i >= (bits / 2) as usize {
                prop_assert_eq!(*p, 0.0, "bit {} cannot err", i);
            }
        }
    }

    /// Sampling an exact multiplier finds no errors, ever.
    #[test]
    fn sampled_exact_is_clean(n in 1u64..5000, seed in any::<u64>()) {
        let s = ErrorStats::sampled(&Exact::new(12, 12), n, seed);
        prop_assert_eq!(s.error_occurrences, 0);
        prop_assert_eq!(s.samples, n);
    }

    /// Pareto fronts are non-dominated, minimal, and cover the set.
    #[test]
    fn pareto_front_properties(points in prop::collection::vec((0u32..50, 0u32..50), 1..60)) {
        let pts: Vec<DesignPoint> = points
            .iter()
            .enumerate()
            .map(|(i, &(e, c))| DesignPoint::new(format!("p{i}"), f64::from(e), f64::from(c)))
            .collect();
        let front = pareto_front(&pts);
        prop_assert!(front.iter().any(|&f| f), "front is never empty");
        for (i, &on_front) in front.iter().enumerate() {
            if on_front {
                for (j, q) in pts.iter().enumerate() {
                    if i != j {
                        prop_assert!(!q.dominates(&pts[i]), "front point dominated");
                    }
                }
            } else {
                prop_assert!(
                    pts.iter().enumerate().any(|(j, q)| front[j] && q.dominates(&pts[i])),
                    "dominated point not covered by the front"
                );
            }
        }
    }
}
