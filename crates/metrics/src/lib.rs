//! # axmul-metrics
//!
//! The error-characterization engine behind the paper's evaluation:
//!
//! * [`ErrorStats`] — the quality metrics of §1.2/Table 5: number of
//!   error occurrences, maximum error magnitude, average (relative)
//!   error, number of maximum-error occurrences — plus the standard
//!   extras (error probability, mean/normalized error distance).
//!   Exhaustive for operand spaces that fit, Monte-Carlo sampled
//!   ([`ErrorStats::sampled`]) for wider ones (16×16 and up).
//! * [`ErrorPmf`] — the distribution of distinct error values
//!   (Fig. 8's "errors in output" histograms).
//! * [`bit_accuracy`] — per-product-bit accuracy probabilities
//!   (Fig. 8's bit-position histograms).
//! * [`pareto`] — non-dominated front extraction for the
//!   error-vs-area and error-vs-latency analyses of Figs. 9–10.
//!
//! ```
//! use axmul_core::behavioral::Ca;
//! use axmul_metrics::ErrorStats;
//!
//! let stats = ErrorStats::exhaustive(&Ca::new(8)?);
//! assert_eq!(stats.max_error, 2312);         // Table 5
//! assert_eq!(stats.max_error_occurrences, 14);
//! assert!((stats.avg_error - 54.1875).abs() < 1e-9);
//! # Ok::<(), axmul_core::WidthError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
pub mod pareto;
mod pmf;
mod quality;
mod stats;

pub use bits::{bit_accuracy, bit_accuracy_sampled};
pub use pareto::{pareto_front, DesignPoint};
pub use pmf::ErrorPmf;
pub use quality::{mean_squared_error, psnr};
pub use stats::{ErrorStats, StatsBuilder};
