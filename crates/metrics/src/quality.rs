//! Application-level quality metrics shared by the case studies.
//!
//! The SUSAN accelerator, the JPEG encoder and the NN inference engine
//! all judge approximate datapaths the same way — mean squared error of
//! an 8-bit signal against a golden reference, usually reported as
//! PSNR. This module is the single implementation those call sites
//! delegate to, so the accumulation (integer SSE, one division) is
//! identical everywhere.

/// Mean squared error between two equal-length 8-bit signals.
///
/// The sum of squared differences is accumulated in integer arithmetic
/// (`u64` holds 2⁴⁶ worst-case pixels), so the result is exact up to
/// the final division.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// assert_eq!(axmul_metrics::mean_squared_error(&[0, 10], &[0, 13]), 4.5);
/// ```
#[must_use]
pub fn mean_squared_error(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "signal length mismatch");
    assert!(!a.is_empty(), "empty signals have no MSE");
    let sse: u64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = i64::from(x) - i64::from(y);
            (d * d) as u64
        })
        .sum();
    sse as f64 / a.len() as f64
}

/// Peak signal-to-noise ratio of two 8-bit signals, in dB.
///
/// Returns `f64::INFINITY` for identical signals (the paper prints "∞"
/// for the accurate multiplier in Table 6).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn psnr(a: &[u8], b: &[u8]) -> f64 {
    let mse = mean_squared_error(a, b);
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_are_infinite() {
        let v = [1u8, 2, 3, 250];
        assert_eq!(psnr(&v, &v), f64::INFINITY);
        assert_eq!(mean_squared_error(&v, &v), 0.0);
    }

    #[test]
    fn known_values() {
        // One pixel off by 255 out of a single-pixel signal: PSNR 0 dB.
        assert!((psnr(&[0], &[255]) - 0.0).abs() < 1e-12);
        // Uniform error of 1: MSE 1, PSNR = 20*log10(255) ~ 48.13 dB.
        let a = [10u8; 100];
        let b = [11u8; 100];
        assert_eq!(mean_squared_error(&a, &b), 1.0);
        assert!((psnr(&a, &b) - 48.1308).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        let _ = mean_squared_error(&[1, 2], &[1]);
    }
}
