//! Per-product-bit accuracy profiles — Fig. 8(a) of the paper.
//!
//! For each output bit position the profile gives the probability that
//! the approximate product bit *differs* from the exact product bit
//! under uniform inputs. The paper's headline observation: the proposed
//! designs "restrict the errors to limited bits only".

use axmul_core::{mask_for, Multiplier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exhaustive per-bit error probabilities. Index `i` is product bit
/// `P_i`; the value is `P[approx bit != exact bit]`.
///
/// # Panics
///
/// Panics if the operand space exceeds 2³² pairs (use
/// [`bit_accuracy_sampled`] instead).
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::Approx4x4;
/// use axmul_metrics::bit_accuracy;
///
/// let profile = bit_accuracy(&Approx4x4::new());
/// // The proposed 4x4 errs only in P3 (fixed magnitude 8 = 1 << 3).
/// assert!(profile[3] > 0.0);
/// for (i, p) in profile.iter().enumerate() {
///     if i != 3 { assert_eq!(*p, 0.0, "bit {i}"); }
/// }
/// ```
#[must_use]
pub fn bit_accuracy(m: &(impl Multiplier + ?Sized)) -> Vec<f64> {
    let (wa, wb) = (m.a_bits(), m.b_bits());
    assert!(wa + wb <= 32, "operand space too large; use sampled");
    let pairs = (0..=mask_for(wa)).flat_map(|a| (0..=mask_for(wb)).map(move |b| (a, b)));
    profile_over(m, pairs)
}

/// Sampled per-bit error probabilities over `n` uniform-random pairs.
#[must_use]
pub fn bit_accuracy_sampled(m: &(impl Multiplier + ?Sized), n: u64, seed: u64) -> Vec<f64> {
    let (wa, wb) = (m.a_bits(), m.b_bits());
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = (0..n).map(move |_| {
        (
            rng.random::<u64>() & mask_for(wa),
            rng.random::<u64>() & mask_for(wb),
        )
    });
    profile_over(m, pairs)
}

fn profile_over(
    m: &(impl Multiplier + ?Sized),
    pairs: impl IntoIterator<Item = (u64, u64)>,
) -> Vec<f64> {
    let out_bits = (m.a_bits() + m.b_bits()) as usize;
    let mut wrong = vec![0u64; out_bits];
    let mut samples = 0u64;
    for (a, b) in pairs {
        let diff = m.exact(a, b) ^ m.multiply(a, b);
        if diff != 0 {
            for (i, w) in wrong.iter_mut().enumerate() {
                *w += diff >> i & 1;
            }
        }
        samples += 1;
    }
    let n = samples.max(1) as f64;
    wrong.into_iter().map(|w| w as f64 / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_baselines::Truncated;
    use axmul_core::behavioral::{Ca, Cc};
    use axmul_core::Exact;

    #[test]
    fn exact_profile_is_zero() {
        assert!(bit_accuracy(&Exact::new(6, 6)).iter().all(|&p| p == 0.0));
    }

    #[test]
    fn truncated_errors_live_in_low_bits_only() {
        let profile = bit_accuracy(&Truncated::new(8, 4));
        for (i, p) in profile.iter().enumerate() {
            if i < 4 {
                assert!(*p > 0.0, "bit {i} should err");
            } else {
                assert_eq!(*p, 0.0, "bit {i} must be clean");
            }
        }
    }

    #[test]
    fn ca8_restricts_errors_to_limited_bits() {
        // Fig. 8's observation: Ca's per-bit error probabilities are
        // nonzero only where elementary-block errors (weight >= 3) can
        // land; the lowest three product bits are always exact.
        let profile = bit_accuracy(&Ca::new(8).unwrap());
        assert_eq!(profile[0], 0.0);
        assert_eq!(profile[1], 0.0);
        assert_eq!(profile[2], 0.0);
        assert!(profile.iter().skip(3).any(|&p| p > 0.0));
    }

    #[test]
    fn cc8_errs_more_broadly_than_ca8() {
        let ca: f64 = bit_accuracy(&Ca::new(8).unwrap()).iter().sum();
        let cc: f64 = bit_accuracy(&Cc::new(8).unwrap()).iter().sum();
        assert!(cc > 5.0 * ca, "ca sum {ca}, cc sum {cc}");
    }

    #[test]
    fn sampled_tracks_exhaustive() {
        let m = Truncated::new(8, 4);
        let full = bit_accuracy(&m);
        let sampled = bit_accuracy_sampled(&m, 40_000, 11);
        for (f, s) in full.iter().zip(&sampled) {
            assert!((f - s).abs() < 0.02, "{f} vs {s}");
        }
    }
}
