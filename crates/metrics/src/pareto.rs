//! Pareto-front extraction for the error-vs-cost analyses of
//! Figs. 9–10.
//!
//! A design point is Pareto-optimal (non-dominated) if no other point
//! is at least as good in both objectives and strictly better in one.
//! Both objectives — error and cost (LUTs or nanoseconds) — are
//! minimized.

use std::fmt;

/// One design in a two-objective (error, cost) trade-off space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Architecture name.
    pub name: String,
    /// Accuracy objective (e.g. average relative error). Lower is better.
    pub error: f64,
    /// Cost objective (LUTs for Fig. 9, critical-path ns for Fig. 10).
    /// Lower is better.
    pub cost: f64,
}

impl DesignPoint {
    /// Creates a design point.
    #[must_use]
    pub fn new(name: impl Into<String>, error: f64, cost: f64) -> Self {
        DesignPoint {
            name: name.into(),
            error,
            cost,
        }
    }

    /// Whether `self` dominates `other` (at least as good in both
    /// objectives, strictly better in at least one).
    #[must_use]
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        self.error <= other.error
            && self.cost <= other.cost
            && (self.error < other.error || self.cost < other.cost)
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (err {:.6}, cost {:.3})",
            self.name, self.error, self.cost
        )
    }
}

/// Marks each point as Pareto-optimal (`true`) or dominated (`false`).
///
/// Duplicate points (identical in both objectives) are all kept on the
/// front, matching how the paper plots coincident designs.
///
/// # Examples
///
/// ```
/// use axmul_metrics::{pareto_front, DesignPoint};
///
/// let pts = vec![
///     DesignPoint::new("small-inaccurate", 0.10, 30.0),
///     DesignPoint::new("balanced", 0.01, 60.0),
///     DesignPoint::new("dominated", 0.10, 90.0),
/// ];
/// assert_eq!(pareto_front(&pts), vec![true, true, false]);
/// ```
#[must_use]
pub fn pareto_front(points: &[DesignPoint]) -> Vec<bool> {
    points
        .iter()
        .map(|p| !points.iter().any(|q| q.dominates(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(e: f64, c: f64) -> DesignPoint {
        DesignPoint::new(format!("e{e}c{c}"), e, c)
    }

    #[test]
    fn single_point_is_optimal() {
        assert_eq!(pareto_front(&[pt(1.0, 1.0)]), vec![true]);
    }

    #[test]
    fn strictly_dominated_points_removed() {
        let pts = vec![pt(0.1, 10.0), pt(0.2, 20.0), pt(0.05, 40.0)];
        assert_eq!(pareto_front(&pts), vec![true, false, true]);
    }

    #[test]
    fn duplicates_all_survive() {
        let pts = vec![pt(0.1, 10.0), pt(0.1, 10.0)];
        assert_eq!(pareto_front(&pts), vec![true, true]);
    }

    #[test]
    fn ties_on_one_axis() {
        // Same error, different cost: only the cheaper survives.
        let pts = vec![pt(0.1, 10.0), pt(0.1, 12.0)];
        assert_eq!(pareto_front(&pts), vec![true, false]);
    }

    #[test]
    fn front_is_mutually_non_dominating() {
        let pts: Vec<DesignPoint> = (0..50)
            .map(|i| {
                let x = f64::from(i);
                pt((x * 7.0) % 13.0, (x * 3.0) % 11.0)
            })
            .collect();
        let front = pareto_front(&pts);
        let survivors: Vec<&DesignPoint> = pts
            .iter()
            .zip(&front)
            .filter_map(|(p, &keep)| keep.then_some(p))
            .collect();
        assert!(!survivors.is_empty());
        for a in &survivors {
            for b in &survivors {
                assert!(!a.dominates(b), "{a} dominates {b}");
            }
        }
        // And every removed point is dominated by some survivor.
        for (p, keep) in pts.iter().zip(&front) {
            if !keep {
                assert!(survivors.iter().any(|s| s.dominates(p)));
            }
        }
    }
}
