use std::collections::BTreeMap;
use std::fmt;

use axmul_core::{mask_for, Multiplier};

/// The probability mass function of a multiplier's error values —
/// Fig. 8(b) of the paper ("unique error occurrences").
///
/// Keys are signed errors `exact − approximate` (positive =
/// underestimate), values are occurrence counts.
///
/// # Examples
///
/// ```
/// use axmul_core::behavioral::Approx4x4;
/// use axmul_metrics::ErrorPmf;
///
/// let pmf = ErrorPmf::exhaustive(&Approx4x4::new());
/// // The proposed 4x4 has exactly one distinct nonzero error value: 8.
/// assert_eq!(pmf.distinct_errors(), 1);
/// assert_eq!(pmf.count(8), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorPmf {
    counts: BTreeMap<i64, u64>,
    samples: u64,
}

impl ErrorPmf {
    /// Builds the PMF over the full operand space.
    ///
    /// # Panics
    ///
    /// Panics if the operand space exceeds 2³² pairs.
    #[must_use]
    pub fn exhaustive(m: &(impl Multiplier + ?Sized)) -> Self {
        let (wa, wb) = (m.a_bits(), m.b_bits());
        assert!(wa + wb <= 32, "operand space too large for exhaustive PMF");
        let mut counts = BTreeMap::new();
        let mut samples = 0u64;
        for a in 0..=mask_for(wa) {
            for b in 0..=mask_for(wb) {
                let e = m.error(a, b);
                if e != 0 {
                    *counts.entry(e).or_insert(0) += 1;
                }
                samples += 1;
            }
        }
        ErrorPmf { counts, samples }
    }

    /// Number of distinct nonzero error values.
    #[must_use]
    pub fn distinct_errors(&self) -> usize {
        self.counts.len()
    }

    /// Occurrences of the given error value.
    #[must_use]
    pub fn count(&self, error: i64) -> u64 {
        if error == 0 {
            self.samples - self.counts.values().sum::<u64>()
        } else {
            self.counts.get(&error).copied().unwrap_or(0)
        }
    }

    /// Total operand pairs evaluated.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Iterates over `(error, count)` pairs in increasing error order
    /// (nonzero errors only).
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(&e, &c)| (e, c))
    }

    /// Iterates over `(error, probability)` pairs — the normalized
    /// histogram the paper plots.
    pub fn normalized(&self) -> impl Iterator<Item = (i64, f64)> + '_ {
        let n = self.samples.max(1) as f64;
        self.counts.iter().map(move |(&e, &c)| (e, c as f64 / n))
    }
}

impl fmt::Display for ErrorPmf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} distinct error values over {} samples",
            self.counts.len(),
            self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_baselines::Truncated;
    use axmul_core::behavioral::{Ca, Cc};
    use axmul_core::Exact;

    #[test]
    fn exact_has_empty_pmf() {
        let pmf = ErrorPmf::exhaustive(&Exact::new(5, 5));
        assert_eq!(pmf.distinct_errors(), 0);
        assert_eq!(pmf.count(0), 1024);
    }

    #[test]
    fn ca8_has_few_distinct_errors() {
        // Fig. 8: "except the Cc multiplier, all other multipliers have
        // few distinct errors" — Ca's errors are sums of the six ±8
        // sub-block errors at four weights.
        let pmf = ErrorPmf::exhaustive(&Ca::new(8).unwrap());
        assert!(pmf.distinct_errors() <= 16, "{}", pmf.distinct_errors());
        // All errors are multiples of 8 (the elementary magnitude).
        for (e, _) in pmf.iter() {
            assert_eq!(e % 8, 0);
            assert!(e > 0);
        }
        // Occurrence counts sum to Table 5's error occurrences.
        let total: u64 = pmf.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5482);
    }

    #[test]
    fn cc8_has_many_distinct_errors() {
        let pmf = ErrorPmf::exhaustive(&Cc::new(8).unwrap());
        assert!(
            pmf.distinct_errors() > 100,
            "carry-free summation spreads errors widely: {}",
            pmf.distinct_errors()
        );
    }

    #[test]
    fn truncation_pmf_is_uniform_ish() {
        let pmf = ErrorPmf::exhaustive(&Truncated::new(8, 2));
        assert_eq!(pmf.distinct_errors(), 3); // errors 1, 2, 3
        assert_eq!(pmf.count(3), 8192); // a, b both odd, ab % 4 == 3
    }

    #[test]
    fn normalized_sums_to_error_probability() {
        let pmf = ErrorPmf::exhaustive(&Truncated::new(8, 4));
        let p: f64 = pmf.normalized().map(|(_, p)| p).sum();
        assert!((p - 53248.0 / 65536.0).abs() < 1e-12);
    }
}
