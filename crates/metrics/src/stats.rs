use std::fmt;

use axmul_core::{mask_for, Multiplier};
use axmul_fabric::compile::CompiledNetlist;
use axmul_fabric::{FabricError, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Complete error characterization of one approximate multiplier.
///
/// Fields follow the quality metrics of the paper (§1.2 and Table 5).
/// Errors are measured as magnitudes `|exact − approximate|`; the
/// average relative error skips operand pairs whose true product is
/// zero (no design in the library errs there, and the ratio would be
/// undefined).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorStats {
    /// Architecture name the stats were computed for.
    pub name: String,
    /// Number of operand pairs evaluated.
    pub samples: u64,
    /// Operand pairs with a nonzero error ("Error Occurrences").
    pub error_occurrences: u64,
    /// Largest error magnitude ("Maximum Error Magnitude").
    pub max_error: i64,
    /// How many operand pairs hit the maximum
    /// ("Maximum Error Occurrences").
    pub max_error_occurrences: u64,
    /// Mean error magnitude over *all* samples ("Average Error"; also
    /// known as the mean error distance, MED).
    pub avg_error: f64,
    /// Mean of `|error| / exact` over all samples with `exact != 0`
    /// divided by the total sample count ("Average Relative Error").
    pub avg_relative_error: f64,
    /// `error_occurrences / samples`.
    pub error_probability: f64,
    /// `avg_error` normalized by the maximum exact product — the NMED
    /// metric common in the approximate-computing literature.
    pub normalized_mean_error_distance: f64,
    /// Mean of the *squared* error over all samples — the loss-proxy
    /// metric behind PSNR and NN quality estimates, accumulated in the
    /// same pass as the other statistics.
    pub mean_squared_error: f64,
    /// Root of [`ErrorStats::mean_squared_error`].
    pub rmse: f64,
    /// Operand pairs `(a, b)` achieving [`ErrorStats::max_error`]: the
    /// first [`WITNESS_CAP`] such pairs in sample order (empty when no
    /// sample errs). Deterministic across worker counts — sharded
    /// sweeps reproduce the sequential list exactly — and the hook
    /// that lets static analyses check their worst-case-error bounds
    /// against a *witnessed* concrete error.
    pub worst_case_inputs: Vec<(u64, u64)>,
}

/// Maximum number of worst-case operand witnesses kept per sweep.
pub const WITNESS_CAP: usize = 4;

impl ErrorStats {
    /// Exhaustively characterizes `m` over its full operand space.
    ///
    /// Pairs are enumerated with `a` as the fast axis — the same linear
    /// order as the gate-level sweep in [`ErrorStats::exhaustive_wide`],
    /// so the two paths produce bit-identical statistics (float
    /// accumulation order included).
    ///
    /// # Panics
    ///
    /// Panics if the operand space exceeds 2³² pairs (use
    /// [`ErrorStats::sampled`] for 16×16 and wider).
    #[must_use]
    pub fn exhaustive(m: &(impl Multiplier + ?Sized)) -> Self {
        let (wa, wb) = (m.a_bits(), m.b_bits());
        assert!(
            wa + wb <= 32,
            "exhaustive sweep over {wa}x{wb} is infeasible; use sampled()"
        );
        let pairs = (0..=mask_for(wb)).flat_map(|b| (0..=mask_for(wa)).map(move |a| (a, b)));
        Self::over_pairs(m, pairs)
    }

    /// [`ErrorStats::exhaustive`] that additionally invokes
    /// `tap(a, b, approx)` for every operand pair, in the same sweep
    /// order (`b` outer, `a` inner). Callers that need both the
    /// statistics and an exhaustive value table (e.g. the DSE
    /// characterization cache) build both in one pass instead of
    /// enumerating the operand space twice; the statistics are
    /// bit-identical to [`ErrorStats::exhaustive`].
    ///
    /// # Panics
    ///
    /// Same as [`ErrorStats::exhaustive`].
    #[must_use]
    pub fn exhaustive_tap(
        m: &(impl Multiplier + ?Sized),
        mut tap: impl FnMut(u64, u64, u64),
    ) -> Self {
        let (wa, wb) = (m.a_bits(), m.b_bits());
        assert!(
            wa + wb <= 32,
            "exhaustive sweep over {wa}x{wb} is infeasible; use sampled()"
        );
        let mut sb = StatsBuilder::new();
        for b in 0..=mask_for(wb) {
            for a in 0..=mask_for(wa) {
                let approx = m.multiply(a, b);
                tap(a, b, approx);
                sb.push(a, b, m.exact(a, b), approx);
            }
        }
        sb.finish(m.name().to_string(), wa, wb)
    }

    /// Characterizes `m` over `n` uniform-random operand pairs drawn
    /// from a deterministic RNG seeded with `seed`.
    #[must_use]
    pub fn sampled(m: &(impl Multiplier + ?Sized), n: u64, seed: u64) -> Self {
        let (wa, wb) = (m.a_bits(), m.b_bits());
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..n).map(move |_| {
            (
                rng.random::<u64>() & mask_for(wa),
                rng.random::<u64>() & mask_for(wb),
            )
        });
        Self::over_pairs(m, pairs)
    }

    /// Characterizes `m` over an arbitrary operand stream — e.g. the
    /// operand trace of an application, as in the paper's SUSAN input
    /// analysis (Fig. 12).
    #[must_use]
    pub fn over_pairs(
        m: &(impl Multiplier + ?Sized),
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        let mut acc = Accumulator::default();
        for (a, b) in pairs {
            acc.push(a, b, m.exact(a, b), m.multiply(a, b));
        }
        acc.finish(m.name().to_string(), m.a_bits(), m.b_bits())
    }

    /// Exhaustively characterizes a structural multiplier *netlist* by
    /// compiling it once ([`CompiledNetlist`]) and streaming the full
    /// operand space through the bit-sliced instruction stream — the
    /// gate-level twin of [`ErrorStats::exhaustive`], and the
    /// evaluation backend of the `axmul-dse` explorer.
    ///
    /// The netlist must have exactly two input buses (the operands, in
    /// `a`, `b` order) and its first output bus is taken as the product.
    /// Equivalent to [`ErrorStats::exhaustive_wide_with`] with one
    /// worker.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InputArity`] if the netlist does not have
    /// exactly two input buses; propagates simulation errors.
    ///
    /// # Panics
    ///
    /// Panics if the operand space exceeds 2³² pairs.
    pub fn exhaustive_wide(netlist: &Netlist) -> Result<Self, FabricError> {
        Self::exhaustive_wide_with(netlist, 1)
    }

    /// [`ErrorStats::exhaustive_wide`] sharded over `workers` threads.
    ///
    /// The operand space is split into contiguous ranges aligned to the
    /// relative-error accumulation chunk, each worker sweeps its range
    /// through its own simulator over the shared compiled program, and
    /// the per-shard partial sums are merged in fixed shard order. The
    /// result is **byte-identical** for every worker count — and to the
    /// scalar [`ErrorStats::exhaustive`] path — because the float
    /// accumulation order is preserved exactly (see [`Accumulator`]).
    ///
    /// # Errors
    ///
    /// Same as [`ErrorStats::exhaustive_wide`].
    ///
    /// # Panics
    ///
    /// Panics if the operand space exceeds 2³² pairs or if a worker
    /// thread panics.
    pub fn exhaustive_wide_with(netlist: &Netlist, workers: usize) -> Result<Self, FabricError> {
        let prog = CompiledNetlist::compile(netlist);
        let (wa, wb) = prog.operand_widths()?;
        assert!(
            wa + wb <= 32,
            "exhaustive sweep over {wa}x{wb} is infeasible"
        );
        let total = 1u64 << (wa + wb);
        // Shard boundaries must fall on REL_CHUNK multiples so every
        // relative-error chunk is computed whole inside one shard.
        let chunks = total.div_ceil(REL_CHUNK);
        let workers = workers.clamp(1, chunks.max(1) as usize);
        let per = chunks.div_ceil(workers as u64) * REL_CHUNK;
        let sweep = |range: std::ops::Range<u64>| -> Result<Accumulator, FabricError> {
            let mut acc = Accumulator::default();
            prog.for_each_operand_pair_in(range, |a, b, out| acc.push(a, b, a * b, out[0]))?;
            Ok(acc)
        };
        let acc = if workers == 1 {
            sweep(0..total)?
        } else {
            let ranges: Vec<std::ops::Range<u64>> = (0..workers as u64)
                .map(|w| (w * per).min(total)..((w + 1) * per).min(total))
                .filter(|r| !r.is_empty())
                .collect();
            let shards: Vec<Accumulator> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|range| scope.spawn(|| sweep(range)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect::<Result<_, FabricError>>()
            })?;
            let mut merged = Accumulator::default();
            for shard in shards {
                merged.merge(shard);
            }
            merged
        };
        Ok(acc.finish(netlist.name().to_string(), wa, wb))
    }
}

/// Samples per relative-error accumulation chunk (a power of two so
/// chunk boundaries coincide with the 64-lane sweep blocks).
const REL_CHUNK: u64 = 4096;

/// Streaming accumulator shared by the scalar ([`ErrorStats::over_pairs`])
/// and wide ([`ErrorStats::exhaustive_wide`]) characterization paths, so
/// both are guaranteed to aggregate identically.
///
/// The integer statistics (counts, `u128` error sums) are exactly
/// associative, but the relative-error sum is floating point, where
/// addition order matters. To make sharded parallel sweeps
/// bit-identical to the sequential path, `rel` is accumulated in
/// fixed-size chunks of [`REL_CHUNK`] samples: each chunk's partial sum
/// involves only samples inside that chunk, and [`Accumulator::finish`]
/// folds the chunk sums left-to-right. A parallel merge of shards whose
/// boundaries fall on chunk multiples therefore reproduces the exact
/// sequence of float additions the single-threaded sweep performs.
#[derive(Debug, Default)]
struct Accumulator {
    samples: u64,
    occ: u64,
    max: i64,
    max_occ: u64,
    sum: u128,
    sum_sq: u128,
    /// Completed relative-error chunk sums, in sample order.
    rel_chunks: Vec<f64>,
    /// Partial sum of the chunk currently being filled.
    chunk_rel: f64,
    /// Samples pushed into the current chunk so far.
    in_chunk: u64,
    /// First [`WITNESS_CAP`] operand pairs achieving the current
    /// maximum, in sample order.
    witnesses: Vec<(u64, u64)>,
}

/// Streaming builder for [`ErrorStats`] over an explicit operand
/// stream, for callers that fuse the sweep with other per-pair work —
/// e.g. the DSE characterization cache builds a quad's value table and
/// its statistics in one tight loop. Pushing pairs in the canonical
/// sweep order (`b` outer, `a` the fast axis) produces statistics
/// bit-identical to [`ErrorStats::exhaustive`]: it is the same
/// accumulator underneath.
#[derive(Debug, Default)]
pub struct StatsBuilder {
    acc: Accumulator,
}

impl StatsBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        StatsBuilder::default()
    }

    /// Accounts one operand pair with its exact and approximate
    /// products. Hot: inlined into the caller's sweep loop.
    #[inline]
    pub fn push(&mut self, a: u64, b: u64, exact: u64, approx: u64) {
        self.acc.push(a, b, exact, approx);
    }

    /// Finalizes the statistics for a `wa`×`wb` multiplier named
    /// `name`.
    #[must_use]
    pub fn finish(self, name: String, wa: u32, wb: u32) -> ErrorStats {
        self.acc.finish(name, wa, wb)
    }
}

impl Accumulator {
    #[inline]
    fn push(&mut self, a: u64, b: u64, exact: u64, approx: u64) {
        if self.in_chunk == REL_CHUNK {
            self.rel_chunks.push(self.chunk_rel);
            self.chunk_rel = 0.0;
            self.in_chunk = 0;
        }
        self.in_chunk += 1;
        self.samples += 1;
        let err = (exact as i64 - approx as i64).abs();
        if err != 0 {
            self.occ += 1;
            self.sum += err as u128;
            self.sum_sq += (err as u128) * (err as u128);
            if exact != 0 {
                self.chunk_rel += err as f64 / exact as f64;
            }
            match err.cmp(&self.max) {
                std::cmp::Ordering::Greater => {
                    self.max = err;
                    self.max_occ = 1;
                    self.witnesses.clear();
                    self.witnesses.push((a, b));
                }
                std::cmp::Ordering::Equal => {
                    self.max_occ += 1;
                    if self.witnesses.len() < WITNESS_CAP {
                        self.witnesses.push((a, b));
                    }
                }
                std::cmp::Ordering::Less => {}
            }
        }
    }

    /// Appends `next`, which must hold the samples immediately
    /// following `self`'s, with the boundary on a [`REL_CHUNK`]
    /// multiple. Counts and integer sums add exactly; the maximum and
    /// its occurrence count compose as they would have sequentially;
    /// the relative-error chunks concatenate in sample order.
    fn merge(&mut self, next: Accumulator) {
        if self.in_chunk == REL_CHUNK {
            self.rel_chunks.push(self.chunk_rel);
            self.chunk_rel = 0.0;
            self.in_chunk = 0;
        }
        assert_eq!(self.in_chunk, 0, "merge boundary must be chunk-aligned");
        self.samples += next.samples;
        self.occ += next.occ;
        self.sum += next.sum;
        self.sum_sq += next.sum_sq;
        match next.max.cmp(&self.max) {
            std::cmp::Ordering::Greater => {
                self.max = next.max;
                self.max_occ = next.max_occ;
                self.witnesses = next.witnesses;
            }
            std::cmp::Ordering::Equal => {
                self.max_occ += next.max_occ;
                // `self`'s samples precede `next`'s, so appending (up
                // to the cap) reproduces the sequential witness list.
                for w in next.witnesses {
                    if self.witnesses.len() < WITNESS_CAP {
                        self.witnesses.push(w);
                    }
                }
            }
            std::cmp::Ordering::Less => {}
        }
        self.rel_chunks.extend_from_slice(&next.rel_chunks);
        self.chunk_rel = next.chunk_rel;
        self.in_chunk = next.in_chunk;
    }

    fn finish(self, name: String, wa: u32, wb: u32) -> ErrorStats {
        let samples_f = self.samples.max(1) as f64;
        let max_product = (mask_for(wa) * mask_for(wb)).max(1) as f64;
        let mse = self.sum_sq as f64 / samples_f;
        // Left fold in sample order: identical for any shard split.
        let rel = self.rel_chunks.iter().fold(0.0f64, |acc, &c| acc + c) + self.chunk_rel;
        ErrorStats {
            name,
            samples: self.samples,
            error_occurrences: self.occ,
            max_error: self.max,
            max_error_occurrences: self.max_occ,
            avg_error: self.sum as f64 / samples_f,
            avg_relative_error: rel / samples_f,
            error_probability: self.occ as f64 / samples_f,
            normalized_mean_error_distance: (self.sum as f64 / samples_f) / max_product,
            mean_squared_error: mse,
            rmse: mse.sqrt(),
            worst_case_inputs: self.witnesses,
        }
    }
}

impl fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: max |e| {} (x{}), avg {:.4}, avg rel {:.6}, {} / {} erroneous",
            self.name,
            self.max_error,
            self.max_error_occurrences,
            self.avg_error,
            self.avg_relative_error,
            self.error_occurrences,
            self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_baselines::Truncated;
    use axmul_core::Exact;

    #[test]
    fn exhaustive_tap_matches_exhaustive_and_fills_table() {
        let m = Truncated::new(6, 3);
        let mut table = vec![u64::MAX; 1 << 12];
        let tapped =
            ErrorStats::exhaustive_tap(&m, |a, b, p| table[((b as usize) << 6) | a as usize] = p);
        assert_eq!(tapped, ErrorStats::exhaustive(&m));
        for b in 0..64u64 {
            for a in 0..64u64 {
                assert_eq!(table[((b as usize) << 6) | a as usize], m.multiply(a, b));
            }
        }
    }

    #[test]
    fn exact_multiplier_has_zero_errors() {
        let s = ErrorStats::exhaustive(&Exact::new(6, 6));
        assert_eq!(s.samples, 4096);
        assert_eq!(s.error_occurrences, 0);
        assert_eq!(s.max_error, 0);
        assert_eq!(s.avg_error, 0.0);
        assert_eq!(s.error_probability, 0.0);
    }

    #[test]
    fn mult_8_4_table5_row() {
        let s = ErrorStats::exhaustive(&Truncated::new(8, 4));
        assert_eq!(s.samples, 65536);
        assert_eq!(s.max_error, 15);
        assert_eq!(s.max_error_occurrences, 2048);
        assert_eq!(s.error_occurrences, 53248);
        assert!((s.avg_error - 6.5).abs() < 1e-12);
        assert!((s.avg_relative_error - 0.003768).abs() < 1e-5);
    }

    #[test]
    fn sampled_is_deterministic_and_close_to_exhaustive() {
        let m = Truncated::new(8, 4);
        let s1 = ErrorStats::sampled(&m, 50_000, 7);
        let s2 = ErrorStats::sampled(&m, 50_000, 7);
        assert_eq!(s1, s2);
        let exact = ErrorStats::exhaustive(&m);
        assert!((s1.avg_error - exact.avg_error).abs() < 0.2);
        assert!((s1.error_probability - exact.error_probability).abs() < 0.02);
    }

    #[test]
    fn over_pairs_with_biased_trace() {
        // A trace that never exercises the truncated bits sees no error.
        let m = Truncated::new(8, 4);
        let trace = (0..256u64).map(|a| (a, 16)); // products are multiples of 16
        let s = ErrorStats::over_pairs(&m, trace);
        assert_eq!(s.error_occurrences, 0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = ErrorStats::exhaustive(&Truncated::new(4, 3));
        let line = s.to_string();
        assert!(line.contains("Mult(4,3)"));
        assert!(line.contains("max |e| 7"));
    }

    fn assert_same_numbers(wide: &ErrorStats, scalar: &ErrorStats) {
        assert_eq!(wide.samples, scalar.samples);
        assert_eq!(wide.error_occurrences, scalar.error_occurrences);
        assert_eq!(wide.max_error, scalar.max_error);
        assert_eq!(wide.max_error_occurrences, scalar.max_error_occurrences);
        assert_eq!(wide.avg_error, scalar.avg_error);
        assert_eq!(wide.avg_relative_error, scalar.avg_relative_error);
        assert_eq!(wide.error_probability, scalar.error_probability);
        assert_eq!(
            wide.normalized_mean_error_distance,
            scalar.normalized_mean_error_distance
        );
        assert_eq!(wide.mean_squared_error, scalar.mean_squared_error);
        assert_eq!(wide.rmse, scalar.rmse);
        assert_eq!(wide.worst_case_inputs, scalar.worst_case_inputs);
    }

    #[test]
    fn exhaustive_wide_matches_scalar_on_4x4() {
        use axmul_core::behavioral::Approx4x4;
        use axmul_core::structural::approx_4x4_netlist;
        let wide = ErrorStats::exhaustive_wide(&approx_4x4_netlist()).unwrap();
        let scalar = ErrorStats::exhaustive(&Approx4x4::new());
        assert_same_numbers(&wide, &scalar);
        // Paper §3.1: 6 erroneous pairs of magnitude 8 out of 256.
        assert_eq!(wide.error_occurrences, 6);
        assert_eq!(wide.max_error, 8);
    }

    #[test]
    fn exhaustive_wide_matches_scalar_on_8x8() {
        use axmul_core::behavioral::{Ca, Cc, Summation};
        use axmul_core::structural::{ca_netlist, cc_netlist};
        for (nl, m) in [
            (ca_netlist(8).unwrap(), Summation::Accurate),
            (cc_netlist(8).unwrap(), Summation::CarryFree),
        ] {
            let wide = ErrorStats::exhaustive_wide(&nl).unwrap();
            let scalar = match m {
                Summation::Accurate => ErrorStats::exhaustive(&Ca::new(8).unwrap()),
                Summation::CarryFree => ErrorStats::exhaustive(&Cc::new(8).unwrap()),
            };
            assert_same_numbers(&wide, &scalar);
            assert!(wide.error_occurrences > 0, "approximate 8x8 must err");
        }
    }

    #[test]
    fn exhaustive_wide_is_byte_stable_across_worker_counts() {
        use axmul_core::structural::{approx_4x4_netlist, ca_netlist, cc_netlist};
        for nl in [
            approx_4x4_netlist(),
            ca_netlist(8).unwrap(),
            cc_netlist(8).unwrap(),
        ] {
            let one = ErrorStats::exhaustive_wide_with(&nl, 1).unwrap();
            for workers in [2, 4] {
                let many = ErrorStats::exhaustive_wide_with(&nl, workers).unwrap();
                assert_eq!(one, many, "{} with {workers} workers", nl.name());
                assert_eq!(
                    one.avg_relative_error.to_bits(),
                    many.avg_relative_error.to_bits(),
                    "float fields must match to the last bit"
                );
            }
        }
    }

    #[test]
    fn exhaustive_wide_rejects_wrong_arity() {
        use axmul_fabric::{Init, NetlistBuilder};
        let mut b = NetlistBuilder::new("one_bus");
        let a = b.inputs("a", 4);
        let (o6, _) = b.lut2(Init::AND2, a[0], a[1]);
        b.output("y", o6);
        let nl = b.finish().unwrap();
        assert!(ErrorStats::exhaustive_wide(&nl).is_err());
    }

    #[test]
    fn worst_case_witnesses_achieve_the_maximum() {
        use axmul_core::behavioral::Approx4x4;
        let m = Approx4x4::new();
        let s = ErrorStats::exhaustive(&m);
        assert_eq!(s.max_error, 8);
        // 6 erring pairs, capped at WITNESS_CAP witnesses.
        assert_eq!(s.worst_case_inputs.len(), WITNESS_CAP);
        for &(a, b) in &s.worst_case_inputs {
            assert_eq!(m.error(a, b), 8, "witness ({a}, {b})");
        }
        // Exact designs report no witness.
        let z = ErrorStats::exhaustive(&axmul_core::Exact::new(4, 4));
        assert!(z.worst_case_inputs.is_empty());
    }

    #[test]
    fn witnesses_are_first_in_sample_order() {
        // Mult(8,4) errs by `p mod 16`; scanning b-slow/a-fast, the
        // first pair with p ≡ 15 (mod 16) is (a, b) = (15, 1).
        let s = ErrorStats::exhaustive(&Truncated::new(8, 4));
        assert_eq!(s.max_error, 15);
        assert_eq!(s.worst_case_inputs.first(), Some(&(15, 1)));
    }

    #[test]
    fn witnesses_are_stable_across_worker_counts() {
        use axmul_core::structural::ca_netlist;
        let nl = ca_netlist(8).unwrap();
        let one = ErrorStats::exhaustive_wide_with(&nl, 1).unwrap();
        assert!(!one.worst_case_inputs.is_empty());
        for workers in [2, 4] {
            let many = ErrorStats::exhaustive_wide_with(&nl, workers).unwrap();
            assert_eq!(one.worst_case_inputs, many.worst_case_inputs);
        }
    }

    #[test]
    fn nmed_is_normalized() {
        let s = ErrorStats::exhaustive(&Truncated::new(8, 4));
        assert!(s.normalized_mean_error_distance > 0.0);
        assert!(s.normalized_mean_error_distance < 1e-3);
    }

    #[test]
    fn mse_and_rmse_are_consistent() {
        // Mult(8,4) zeroes the low nibble of the product: the error is
        // `p mod 16`, so the MSE can be computed independently.
        let m = Truncated::new(8, 4);
        let s = ErrorStats::exhaustive(&m);
        let direct: f64 = (0..=255u64)
            .flat_map(|b| (0..=255u64).map(move |a| a * b))
            .map(|p| ((p % 16) * (p % 16)) as f64)
            .sum::<f64>()
            / 65536.0;
        assert!((s.mean_squared_error - direct).abs() < 1e-9);
        assert!((s.rmse - s.mean_squared_error.sqrt()).abs() < 1e-12);
        // Jensen: E[e^2] >= E[e]^2, i.e. rmse >= avg_error.
        assert!(s.rmse >= s.avg_error);
        // Exact designs have zero everywhere.
        let z = ErrorStats::exhaustive(&axmul_core::Exact::new(6, 6));
        assert_eq!(z.mean_squared_error, 0.0);
        assert_eq!(z.rmse, 0.0);
    }
}
