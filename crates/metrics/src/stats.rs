use std::fmt;

use axmul_core::{mask_for, Multiplier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Complete error characterization of one approximate multiplier.
///
/// Fields follow the quality metrics of the paper (§1.2 and Table 5).
/// Errors are measured as magnitudes `|exact − approximate|`; the
/// average relative error skips operand pairs whose true product is
/// zero (no design in the library errs there, and the ratio would be
/// undefined).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorStats {
    /// Architecture name the stats were computed for.
    pub name: String,
    /// Number of operand pairs evaluated.
    pub samples: u64,
    /// Operand pairs with a nonzero error ("Error Occurrences").
    pub error_occurrences: u64,
    /// Largest error magnitude ("Maximum Error Magnitude").
    pub max_error: i64,
    /// How many operand pairs hit the maximum
    /// ("Maximum Error Occurrences").
    pub max_error_occurrences: u64,
    /// Mean error magnitude over *all* samples ("Average Error"; also
    /// known as the mean error distance, MED).
    pub avg_error: f64,
    /// Mean of `|error| / exact` over all samples with `exact != 0`
    /// divided by the total sample count ("Average Relative Error").
    pub avg_relative_error: f64,
    /// `error_occurrences / samples`.
    pub error_probability: f64,
    /// `avg_error` normalized by the maximum exact product — the NMED
    /// metric common in the approximate-computing literature.
    pub normalized_mean_error_distance: f64,
}

impl ErrorStats {
    /// Exhaustively characterizes `m` over its full operand space.
    ///
    /// # Panics
    ///
    /// Panics if the operand space exceeds 2³² pairs (use
    /// [`ErrorStats::sampled`] for 16×16 and wider).
    #[must_use]
    pub fn exhaustive(m: &(impl Multiplier + ?Sized)) -> Self {
        let (wa, wb) = (m.a_bits(), m.b_bits());
        assert!(
            wa + wb <= 32,
            "exhaustive sweep over {wa}x{wb} is infeasible; use sampled()"
        );
        let pairs =
            (0..=mask_for(wa)).flat_map(|a| (0..=mask_for(wb)).map(move |b| (a, b)));
        Self::over_pairs(m, pairs)
    }

    /// Characterizes `m` over `n` uniform-random operand pairs drawn
    /// from a deterministic RNG seeded with `seed`.
    #[must_use]
    pub fn sampled(m: &(impl Multiplier + ?Sized), n: u64, seed: u64) -> Self {
        let (wa, wb) = (m.a_bits(), m.b_bits());
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..n).map(move |_| {
            (
                rng.random::<u64>() & mask_for(wa),
                rng.random::<u64>() & mask_for(wb),
            )
        });
        Self::over_pairs(m, pairs)
    }

    /// Characterizes `m` over an arbitrary operand stream — e.g. the
    /// operand trace of an application, as in the paper's SUSAN input
    /// analysis (Fig. 12).
    #[must_use]
    pub fn over_pairs(
        m: &(impl Multiplier + ?Sized),
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        let mut samples = 0u64;
        let mut occ = 0u64;
        let mut max = 0i64;
        let mut max_occ = 0u64;
        let mut sum = 0u128;
        let mut rel = 0.0f64;
        for (a, b) in pairs {
            samples += 1;
            let exact = m.exact(a, b);
            let err = (exact as i64 - m.multiply(a, b) as i64).abs();
            if err != 0 {
                occ += 1;
                sum += err as u128;
                if exact != 0 {
                    rel += err as f64 / exact as f64;
                }
                match err.cmp(&max) {
                    std::cmp::Ordering::Greater => {
                        max = err;
                        max_occ = 1;
                    }
                    std::cmp::Ordering::Equal => max_occ += 1,
                    std::cmp::Ordering::Less => {}
                }
            }
        }
        let samples_f = samples.max(1) as f64;
        let max_product = (mask_for(m.a_bits()) * mask_for(m.b_bits())).max(1) as f64;
        ErrorStats {
            name: m.name().to_string(),
            samples,
            error_occurrences: occ,
            max_error: max,
            max_error_occurrences: max_occ,
            avg_error: sum as f64 / samples_f,
            avg_relative_error: rel / samples_f,
            error_probability: occ as f64 / samples_f,
            normalized_mean_error_distance: (sum as f64 / samples_f) / max_product,
        }
    }
}

impl fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: max |e| {} (x{}), avg {:.4}, avg rel {:.6}, {} / {} erroneous",
            self.name,
            self.max_error,
            self.max_error_occurrences,
            self.avg_error,
            self.avg_relative_error,
            self.error_occurrences,
            self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_baselines::Truncated;
    use axmul_core::Exact;

    #[test]
    fn exact_multiplier_has_zero_errors() {
        let s = ErrorStats::exhaustive(&Exact::new(6, 6));
        assert_eq!(s.samples, 4096);
        assert_eq!(s.error_occurrences, 0);
        assert_eq!(s.max_error, 0);
        assert_eq!(s.avg_error, 0.0);
        assert_eq!(s.error_probability, 0.0);
    }

    #[test]
    fn mult_8_4_table5_row() {
        let s = ErrorStats::exhaustive(&Truncated::new(8, 4));
        assert_eq!(s.samples, 65536);
        assert_eq!(s.max_error, 15);
        assert_eq!(s.max_error_occurrences, 2048);
        assert_eq!(s.error_occurrences, 53248);
        assert!((s.avg_error - 6.5).abs() < 1e-12);
        assert!((s.avg_relative_error - 0.003768).abs() < 1e-5);
    }

    #[test]
    fn sampled_is_deterministic_and_close_to_exhaustive() {
        let m = Truncated::new(8, 4);
        let s1 = ErrorStats::sampled(&m, 50_000, 7);
        let s2 = ErrorStats::sampled(&m, 50_000, 7);
        assert_eq!(s1, s2);
        let exact = ErrorStats::exhaustive(&m);
        assert!((s1.avg_error - exact.avg_error).abs() < 0.2);
        assert!((s1.error_probability - exact.error_probability).abs() < 0.02);
    }

    #[test]
    fn over_pairs_with_biased_trace() {
        // A trace that never exercises the truncated bits sees no error.
        let m = Truncated::new(8, 4);
        let trace = (0..256u64).map(|a| (a, 16)); // products are multiples of 16
        let s = ErrorStats::over_pairs(&m, trace);
        assert_eq!(s.error_occurrences, 0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = ErrorStats::exhaustive(&Truncated::new(4, 3));
        let line = s.to_string();
        assert!(line.contains("Mult(4,3)"));
        assert!(line.contains("max |e| 7"));
    }

    #[test]
    fn nmed_is_normalized() {
        let s = ErrorStats::exhaustive(&Truncated::new(8, 4));
        assert!(s.normalized_mean_error_distance > 0.0);
        assert!(s.normalized_mean_error_distance < 1e-3);
    }
}
