//! Property-based fuzzing of both interchange readers: arbitrary
//! mutations of valid documents — and raw byte soup — must always
//! produce a typed [`NetioError`], never a panic, and accepted inputs
//! must re-export to a byte fixpoint.

use axmul_core::structural::ca_netlist;
use axmul_fabric::export::to_verilog;
use axmul_netio::{from_axnl, from_verilog, import, to_axnl, NetioError};
use proptest::prelude::*;

fn seed_verilog() -> String {
    to_verilog(&ca_netlist(4).expect("valid width"))
}

fn seed_axnl() -> String {
    to_axnl(&ca_netlist(4).expect("valid width"))
}

/// Applies `(offset, byte)` splices to `base`, keeping the result valid
/// UTF-8 by lowering every replacement byte into the ASCII range.
fn mutate(base: &str, edits: &[(usize, u8)]) -> String {
    let mut bytes = base.as_bytes().to_vec();
    for &(off, b) in edits {
        let i = off % bytes.len();
        bytes[i] = b & 0x7F;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Every error the readers produce must carry a stable kebab-case code
/// (the CLI/daemon key the caller switches on).
fn assert_typed(e: &NetioError) {
    let code = e.code();
    assert!(
        !code.is_empty() && code.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'),
        "unstable error code {code:?} for {e}"
    );
    // Display must never be empty either — errors surface verbatim in
    // CLI output and daemon responses.
    assert!(!e.to_string().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte splices into a valid Verilog module either still parse (and
    /// then re-export deterministically) or fail with a typed error.
    #[test]
    fn mutated_verilog_never_panics(
        edits in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..16)
    ) {
        let text = mutate(&seed_verilog(), &edits);
        match from_verilog(&text) {
            Ok(n) => {
                // Whatever survived mutation must itself round-trip.
                let v = to_verilog(&n);
                let again = from_verilog(&v).expect("re-import of accepted design");
                prop_assert_eq!(to_verilog(&again), v);
            }
            Err(e) => assert_typed(&e),
        }
    }

    /// Byte splices into a valid axnl-v1 document are caught by the
    /// JSON parser, the schema validator, or the content hash — typed
    /// errors all the way down.
    #[test]
    fn mutated_axnl_never_panics(
        edits in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..16)
    ) {
        let text = mutate(&seed_axnl(), &edits);
        match from_axnl(&text) {
            Ok(n) => prop_assert_eq!(to_axnl(&n), text),
            Err(e) => assert_typed(&e),
        }
    }

    /// Raw ASCII soup through the auto-detecting entry point.
    #[test]
    fn arbitrary_text_never_panics(
        bytes in proptest::collection::vec(0u8..=0x7F, 0..512)
    ) {
        let text = String::from_utf8(bytes).expect("ASCII");
        if let Err(e) = import(&text) {
            assert_typed(&e);
        }
    }

    /// Truncations at every prefix length: unterminated comments,
    /// half-written instances, dangling concats — all typed.
    #[test]
    fn truncated_verilog_never_panics(cut in 0usize..4096) {
        let full = seed_verilog();
        let cut = cut % full.len();
        // Respect char boundaries (exported Verilog is ASCII, but don't
        // rely on it).
        let prefix: String = full.chars().take(cut).collect();
        if let Err(e) = from_verilog(&prefix) {
            assert_typed(&e);
        }
    }
}
