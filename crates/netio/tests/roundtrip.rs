//! End-to-end interchange guarantees over the full Fig. 7 roster and a
//! sampled slice of the 8×8 DSE configuration space:
//!
//! * **Byte fixpoint** — `to_verilog(import(to_verilog(n)))` equals
//!   `to_verilog(n)` exactly, so fingerprints (and therefore warm
//!   characterization caches) survive a trip through the filesystem.
//! * **Lossless axnl** — `from_axnl(to_axnl(n))` reproduces the same
//!   document and the same Verilog.
//! * **Semantic identity** — imported netlists lint identically and
//!   produce bit-identical [`ErrorStats`] (float accumulation order
//!   included) to their in-process twins.

use axmul_baselines::{kulkarni_netlist, pp_truncated_netlist, rehman_netlist, IpOpt, VivadoIp};
use axmul_core::structural::{ca_netlist, cc_netlist};
use axmul_dse::Config;
use axmul_fabric::export::to_verilog;
use axmul_fabric::Netlist;
use axmul_lint::Linter;
use axmul_metrics::ErrorStats;
use axmul_netio::{fingerprint, from_axnl, from_verilog, to_axnl};

/// The Fig. 7 roster at one operand width (mirrors
/// `axmul_bench::roster::fig7_roster`, re-built here because the bench
/// crate sits above netio in the dependency graph).
fn roster(bits: u32) -> Vec<Netlist> {
    vec![
        kulkarni_netlist(bits).expect("valid width"),
        rehman_netlist(bits).expect("valid width"),
        ca_netlist(bits).expect("valid width"),
        cc_netlist(bits).expect("valid width"),
        pp_truncated_netlist(bits, bits, bits / 2 + 1),
        VivadoIp::new(bits, IpOpt::Area).netlist(),
        VivadoIp::new(bits, IpOpt::Speed).netlist(),
    ]
}

/// Every 25th of the 1250 enumerable 8×8 configs: 50 designs spanning
/// the whole space (all five leaf kinds appear in both recursion
/// styles).
fn sampled_configs() -> Vec<Netlist> {
    let configs = Config::enumerate(8);
    assert_eq!(configs.len(), 1250);
    configs.iter().step_by(25).map(Config::assemble).collect()
}

#[test]
fn roster_verilog_round_trips_to_byte_fixpoint() {
    for bits in [4u32, 8, 16] {
        for n in roster(bits) {
            let v = to_verilog(&n);
            let back = from_verilog(&v)
                .unwrap_or_else(|e| panic!("{} @ {bits} bits failed to import: {e}", n.name()));
            assert_eq!(
                to_verilog(&back),
                v,
                "{} @ {bits} bits is not a byte fixpoint",
                n.name()
            );
            assert_eq!(back.name(), n.name());
            assert_eq!(
                fingerprint(&back),
                fingerprint(&n),
                "{} @ {bits} bits changed fingerprint on import",
                n.name()
            );
            // axnl equality is a full structural comparison: drivers,
            // cells, buses and the content hash all feed the document.
            assert_eq!(to_axnl(&back), to_axnl(&n));
        }
    }
}

#[test]
fn roster_axnl_round_trips_losslessly() {
    for bits in [4u32, 8, 16] {
        for n in roster(bits) {
            let doc = to_axnl(&n);
            let back = from_axnl(&doc)
                .unwrap_or_else(|e| panic!("{} @ {bits} bits failed axnl import: {e}", n.name()));
            assert_eq!(to_axnl(&back), doc, "{} axnl not lossless", n.name());
            assert_eq!(to_verilog(&back), to_verilog(&n));
        }
    }
}

#[test]
fn roster_import_preserves_lint_reports() {
    let linter = Linter::new();
    for bits in [4u32, 8] {
        for n in roster(bits) {
            let orig = linter.lint(&n);
            let back = linter.lint(&from_verilog(&to_verilog(&n)).expect("imports"));
            assert_eq!(
                orig.to_json(),
                back.to_json(),
                "{} @ {bits} bits lints differently after import",
                n.name()
            );
        }
    }
}

#[test]
fn roster_import_preserves_error_stats_bit_identically() {
    for bits in [4u32, 8] {
        for n in roster(bits) {
            let orig = ErrorStats::exhaustive_wide(&n).expect("simulates");
            let imported = from_verilog(&to_verilog(&n)).expect("imports");
            let back = ErrorStats::exhaustive_wide(&imported).expect("simulates");
            assert_eq!(
                orig,
                back,
                "{} @ {bits} bits: stats diverged after import",
                n.name()
            );
        }
    }
}

#[test]
fn sixteen_bit_roster_evals_identically_on_sampled_operands() {
    // 16×16 exhaustive sweeps are 2³² pairs — sample the operand space
    // with a splitmix64 stream instead and compare raw eval outputs.
    let mut state = 0xDAC18u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let pairs: Vec<(u64, u64)> = (0..256)
        .map(|_| (next() & 0xFFFF, next() & 0xFFFF))
        .collect();
    for n in roster(16) {
        let imported = from_verilog(&to_verilog(&n)).expect("imports");
        for &(a, b) in &pairs {
            assert_eq!(
                n.eval(&[a, b]).expect("original simulates"),
                imported.eval(&[a, b]).expect("import simulates"),
                "{}: eval({a}, {b}) diverged after import",
                n.name()
            );
        }
    }
}

#[test]
fn sampled_dse_configs_round_trip() {
    let linter = Linter::new();
    for (i, n) in sampled_configs().into_iter().enumerate() {
        let v = to_verilog(&n);
        let back = from_verilog(&v)
            .unwrap_or_else(|e| panic!("config #{i} ({}) failed to import: {e}", n.name()));
        assert_eq!(to_verilog(&back), v, "config #{i} not a byte fixpoint");
        assert_eq!(fingerprint(&back), fingerprint(&n));
        assert_eq!(to_axnl(&back), to_axnl(&n), "config #{i} axnl differs");
        let doc = to_axnl(&n);
        assert_eq!(to_axnl(&from_axnl(&doc).expect("axnl imports")), doc);
        // Exhaustive 8×8 stats for a subset keep the runtime modest
        // while still pinning semantic identity across the space.
        if i % 10 == 0 {
            assert_eq!(
                linter.lint(&n).to_json(),
                linter.lint(&back).to_json(),
                "config #{i} lints differently"
            );
            assert_eq!(
                ErrorStats::exhaustive_wide(&n).expect("simulates"),
                ErrorStats::exhaustive_wide(&back).expect("simulates"),
                "config #{i} stats diverged"
            );
        }
    }
}
