//! The typed error taxonomy of the interchange layer.
//!
//! Every failure an importer can hit — lexical, grammatical, schema,
//! elaboration — is a [`NetioError`] variant carrying enough structure
//! for a caller (CLI, daemon) to render a precise message without
//! string matching, plus a stable kebab-case [`NetioError::code`] for
//! wire protocols and documentation. Verilog-side variants carry the
//! source [`Loc`] of the offending token; `axnl` schema variants carry
//! the JSON path instead.

use std::fmt;

use crate::json::JsonError;

/// A position in the imported source text (1-based, like editors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes; the dialect is ASCII).
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// Why an import failed. See [`NetioError::code`] for the stable wire
/// spelling of each class.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetioError {
    /// The text violated the grammar (unexpected token, missing
    /// punctuation, unterminated construct, bad literal).
    Syntax {
        /// Where the parse failed.
        loc: Loc,
        /// What the parser expected or found.
        message: String,
    },
    /// An instantiated primitive is neither `LUT6_2` nor `CARRY4`.
    UnknownPrimitive {
        /// Location of the instantiation.
        loc: Loc,
        /// The primitive name found.
        primitive: String,
    },
    /// A named port connection the primitive does not have, a duplicate
    /// connection, or a required connection left out.
    BadPort {
        /// Location of the instantiation or connection.
        loc: Loc,
        /// Instance name.
        cell: String,
        /// What is wrong with the port list.
        message: String,
    },
    /// A connection or concatenation has the wrong number of bits.
    WidthMismatch {
        /// Location of the expression.
        loc: Loc,
        /// What was being connected (port or net name).
        what: String,
        /// Bits required.
        expected: usize,
        /// Bits found.
        found: usize,
    },
    /// A bit-select outside the declared bus range.
    OutOfRange {
        /// Location of the reference.
        loc: Loc,
        /// Bus name.
        name: String,
        /// Offending index.
        index: usize,
        /// Declared width.
        width: usize,
    },
    /// A reference to an identifier that is neither a declared wire nor
    /// a port.
    UnknownNet {
        /// Location of the reference.
        loc: Loc,
        /// The undeclared name.
        name: String,
    },
    /// A declared wire or output bit that nothing ever drives.
    UndrivenNet {
        /// Location of the declaration (or of the output port).
        loc: Loc,
        /// Net or output-bit name.
        name: String,
    },
    /// Two drivers claim the same net (or the same name is declared
    /// twice).
    DuplicateDriver {
        /// Location of the second driver.
        loc: Loc,
        /// The multiply-driven net.
        name: String,
    },
    /// A `LUT6_2` without a 64-bit `INIT`, or an `INIT` literal that is
    /// not exactly 16 hex digits.
    BadInit {
        /// Location of the parameter (or instantiation, when missing).
        loc: Loc,
        /// What is wrong with the attribute.
        message: String,
    },
    /// The cells form a combinational cycle; no topological order
    /// exists.
    CombLoop {
        /// Indices (file order) of the cells on or behind the cycle.
        cells: Vec<usize>,
    },
    /// The design exceeds a hard importer resource limit (hostile or
    /// runaway input must not exhaust memory).
    LimitExceeded {
        /// Which limit.
        what: &'static str,
        /// The configured maximum.
        limit: usize,
    },
    /// An `axnl` document that is not valid JSON.
    Json(JsonError),
    /// An `axnl` document that parsed but violates the schema.
    Schema {
        /// JSON path of the offending value, e.g. `cells[3].init`.
        path: String,
        /// What the schema requires there.
        message: String,
    },
    /// The `format` field names a version this reader does not speak.
    UnsupportedFormat {
        /// The format string found.
        found: String,
    },
    /// The document's metadata hash disagrees with the reconstructed
    /// netlist (the file was edited after export, or corrupted).
    HashMismatch {
        /// Hash recomputed from the reconstruction.
        expected: u64,
        /// Hash the document claims.
        found: u64,
    },
}

impl NetioError {
    /// Stable kebab-case class code, used by the daemon's error
    /// responses and documented in `docs/interchange.md`.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            NetioError::Syntax { .. } => "syntax",
            NetioError::UnknownPrimitive { .. } => "unknown-primitive",
            NetioError::BadPort { .. } => "bad-port",
            NetioError::WidthMismatch { .. } => "width-mismatch",
            NetioError::OutOfRange { .. } => "out-of-range",
            NetioError::UnknownNet { .. } => "unknown-net",
            NetioError::UndrivenNet { .. } => "undriven-net",
            NetioError::DuplicateDriver { .. } => "duplicate-driver",
            NetioError::BadInit { .. } => "bad-init",
            NetioError::CombLoop { .. } => "comb-loop",
            NetioError::LimitExceeded { .. } => "limit-exceeded",
            NetioError::Json(_) => "bad-json",
            NetioError::Schema { .. } => "bad-schema",
            NetioError::UnsupportedFormat { .. } => "unsupported-format",
            NetioError::HashMismatch { .. } => "hash-mismatch",
        }
    }

    /// The source location, for variants that have one.
    #[must_use]
    pub fn loc(&self) -> Option<Loc> {
        match self {
            NetioError::Syntax { loc, .. }
            | NetioError::UnknownPrimitive { loc, .. }
            | NetioError::BadPort { loc, .. }
            | NetioError::WidthMismatch { loc, .. }
            | NetioError::OutOfRange { loc, .. }
            | NetioError::UnknownNet { loc, .. }
            | NetioError::UndrivenNet { loc, .. }
            | NetioError::DuplicateDriver { loc, .. }
            | NetioError::BadInit { loc, .. } => Some(*loc),
            _ => None,
        }
    }
}

impl fmt::Display for NetioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetioError::Syntax { loc, message } => write!(f, "{loc}: syntax error: {message}"),
            NetioError::UnknownPrimitive { loc, primitive } => {
                write!(
                    f,
                    "{loc}: unknown primitive `{primitive}` (this importer speaks LUT6_2 and CARRY4)"
                )
            }
            NetioError::BadPort { loc, cell, message } => {
                write!(f, "{loc}: bad port connection on `{cell}`: {message}")
            }
            NetioError::WidthMismatch {
                loc,
                what,
                expected,
                found,
            } => write!(
                f,
                "{loc}: width mismatch on {what}: expected {expected} bit(s), found {found}"
            ),
            NetioError::OutOfRange {
                loc,
                name,
                index,
                width,
            } => write!(
                f,
                "{loc}: bit-select `{name}[{index}]` outside the declared [{}:0] range",
                width.saturating_sub(1)
            ),
            NetioError::UnknownNet { loc, name } => {
                write!(f, "{loc}: reference to undeclared net `{name}`")
            }
            NetioError::UndrivenNet { loc, name } => {
                write!(f, "{loc}: net `{name}` is never driven")
            }
            NetioError::DuplicateDriver { loc, name } => {
                write!(f, "{loc}: net `{name}` has more than one driver")
            }
            NetioError::BadInit { loc, message } => {
                write!(f, "{loc}: bad INIT attribute: {message}")
            }
            NetioError::CombLoop { cells } => {
                write!(f, "combinational loop through {} cell(s)", cells.len())
            }
            NetioError::LimitExceeded { what, limit } => {
                write!(f, "design exceeds the importer limit of {limit} {what}")
            }
            NetioError::Json(e) => write!(f, "{e}"),
            NetioError::Schema { path, message } => {
                write!(f, "schema violation at `{path}`: {message}")
            }
            NetioError::UnsupportedFormat { found } => write!(
                f,
                "unsupported netlist format `{found}` (this reader speaks `{}`)",
                crate::axnl::AXNL_FORMAT
            ),
            NetioError::HashMismatch { expected, found } => write!(
                f,
                "metadata hash {found:016x} does not match the reconstructed netlist ({expected:016x})"
            ),
        }
    }
}

impl std::error::Error for NetioError {}

impl From<JsonError> for NetioError {
    fn from(e: JsonError) -> Self {
        NetioError::Json(e)
    }
}
