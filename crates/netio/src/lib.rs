//! # axmul-netio — netlist interchange
//!
//! The fabric layer can *emit* structural Verilog and VHDL
//! ([`axmul_fabric::export`]), but until this crate the repository was
//! a closed world: nothing could read a netlist back in, so the lint,
//! abstract-interpretation, characterization, and daemon layers only
//! ever saw designs generated in-process. `axmul-netio` closes the
//! loop with two interchange formats, both dependency-free and both
//! proven lossless:
//!
//! * **Structural Verilog** ([`verilog`]) — a lexer + recursive-descent
//!   parser + elaborator for exactly the `LUT6_2`/`CARRY4` dialect
//!   [`axmul_fabric::export::to_verilog`] emits. Re-importing an export
//!   is a *byte-level fixpoint*: `to_verilog(import(to_verilog(n)))`
//!   equals `to_verilog(n)`, which also makes the content
//!   [`fingerprint`] — and every characterization-cache key derived
//!   from it — stable across a round trip. Foreign files in the same
//!   dialect import too (renumbered into canonical form).
//! * **`axnl-v1` JSON** ([`axnl`]) — a versioned, schema-checked JSON
//!   encoding with explicit net ids, hex INIT strings, and an embedded
//!   fingerprint so corruption is detected at read time.
//!
//! All failures are typed [`NetioError`] values with source locations
//! (Verilog) or JSON paths (`axnl`) — hostile input can produce an
//! error, never a panic or a silently-wrong netlist. The generic JSON
//! parser/printer lives here as [`json`] and is shared with
//! `axmul-serve`'s wire protocol.
//!
//! ## Quick start
//!
//! ```
//! use axmul_fabric::{export::to_verilog, Init, NetlistBuilder};
//!
//! let mut b = NetlistBuilder::new("tiny");
//! let a = b.inputs("a", 2);
//! let (x, _) = b.lut2(Init::AND2, a[0], a[1]);
//! b.output("y", x);
//! let netlist = b.finish().unwrap();
//!
//! let text = to_verilog(&netlist);
//! let back = axmul_netio::import(&text).unwrap(); // auto-detects format
//! assert_eq!(to_verilog(&back), text);            // byte fixpoint
//! assert_eq!(
//!     axmul_netio::fingerprint(&back),
//!     axmul_netio::fingerprint(&netlist),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axnl;
pub mod error;
pub mod json;
pub mod verilog;

pub use axnl::{fingerprint, from_axnl, to_axnl, AXNL_FORMAT};
pub use error::{Loc, NetioError};
pub use verilog::from_verilog;

use axmul_fabric::Netlist;

/// The two interchange formats this crate speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Structural Verilog in the exported `LUT6_2`/`CARRY4` dialect.
    Verilog,
    /// The `axnl-v1` JSON document format.
    Axnl,
}

impl Format {
    /// Stable lower-case name (`"verilog"` / `"axnl"`), as used by the
    /// CLI and the daemon's `import-netlist` requests.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Format::Verilog => "verilog",
            Format::Axnl => "axnl",
        }
    }
}

impl std::str::FromStr for Format {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "verilog" | "v" => Ok(Format::Verilog),
            "axnl" | "json" => Ok(Format::Axnl),
            _ => Err(()),
        }
    }
}

/// Guesses the format of an interchange document from its first
/// non-whitespace byte: JSON documents open with `{`, Verilog with a
/// comment or the `module` keyword.
#[must_use]
pub fn detect_format(text: &str) -> Format {
    match text.trim_start().as_bytes().first() {
        Some(b'{') => Format::Axnl,
        _ => Format::Verilog,
    }
}

/// Imports a netlist from either format, auto-detected via
/// [`detect_format`].
///
/// # Errors
///
/// Any [`NetioError`] the chosen format's reader can produce.
pub fn import(text: &str) -> Result<Netlist, NetioError> {
    match detect_format(text) {
        Format::Verilog => from_verilog(text),
        Format::Axnl => from_axnl(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::export::to_verilog;
    use axmul_fabric::{Init, NetlistBuilder};

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.inputs("a", 2);
        let (x, _) = b.lut2(Init::AND2, a[0], a[1]);
        b.output("y", x);
        b.finish().unwrap()
    }

    #[test]
    fn auto_detection_routes_both_formats() {
        let nl = tiny();
        assert_eq!(detect_format(&to_verilog(&nl)), Format::Verilog);
        assert_eq!(detect_format(&to_axnl(&nl)), Format::Axnl);
        let v = import(&to_verilog(&nl)).unwrap();
        let j = import(&to_axnl(&nl)).unwrap();
        assert_eq!(v.drivers(), j.drivers());
        assert_eq!(v.cells(), j.cells());
        assert_eq!(fingerprint(&v), fingerprint(&j));
    }

    #[test]
    fn format_names_parse_back() {
        for f in [Format::Verilog, Format::Axnl] {
            assert_eq!(f.name().parse::<Format>().unwrap(), f);
        }
        assert_eq!("json".parse::<Format>().unwrap(), Format::Axnl);
        assert!("edif".parse::<Format>().is_err());
    }
}
