//! Minimal JSON value model, parser and writer.
//!
//! The offline container has no serde, so the workspace carries its own
//! JSON implementation: a [`Value`] tree, a recursive-descent parser
//! with depth guards (hostile input reaches it straight off the wire or
//! from untrusted files), and a writer whose output round-trips through
//! the parser. Numbers are `f64` — every quantity the `axnl` schema and
//! the daemon protocol carry is either well below 2^53 or a float to
//! begin with; the one exception, 64-bit LUT INITs, travels as a hex
//! string (see [`crate::axnl`]). This module started life inside
//! `axmul-serve`; it lives here so both the interchange formats and the
//! wire protocol share one parser, and `axmul-serve` re-exports it
//! unchanged.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: u32 = 64;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap), so rendering is
    /// deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fraction, no overflow).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Numeric value from anything convertible to `f64` losslessly
    /// enough for the protocol (counts are well below 2^53).
    #[must_use]
    pub fn num(n: impl Into<f64>) -> Value {
        Value::Num(n.into())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no NaN/Inf; degrade to null.
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(map));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte {other:#04x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("unparseable number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos just past the last digit;
                            // skip the shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through verbatim; the
                    // input is already a &str, so slicing on a char
                    // boundary is guaranteed by walking chars.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Num(-125.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::Str("a\nb".into()));
        assert_eq!(
            parse(r#"[1, "two", [3], {}]"#).unwrap(),
            Value::Arr(vec![
                Value::Num(1.0),
                Value::Str("two".into()),
                Value::Arr(vec![Value::Num(3.0)]),
                Value::Obj(BTreeMap::new()),
            ])
        );
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "}", "[1,", "[1 2]", "{\"a\"}", "{\"a\":}", "nul", "tru", "01x", "\"", "1 2",
            "--1", "1.", "1e", "[,]",
        ] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn rejects_hostile_nesting_depth() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn writer_output_round_trips() {
        let v = Value::obj([
            (
                "s",
                Value::str("quote \" backslash \\ newline \n ünïcødé 😀"),
            ),
            ("n", Value::num(0.1f64)),
            ("i", Value::num(65536u32)),
            ("neg", Value::Num(-7.0)),
            ("b", Value::Bool(false)),
            ("z", Value::Null),
            (
                "a",
                Value::Arr(vec![Value::Num(1.0), Value::str("x"), Value::Null]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(5.0).as_u64(), Some(5));
        assert_eq!(Value::Num(5.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::str("5").as_u64(), None);
    }
}
