//! `axnl-v1` — the versioned JSON netlist schema.
//!
//! A flat, dependency-free encoding of a [`Netlist`] designed for
//! tooling that would rather not parse Verilog: explicit net ids,
//! cells in topological order, LUT INITs as 16-digit hex strings
//! (JSON numbers cannot carry 64 bits losslessly), and a trailing
//! metadata `hash` — the FNV-1a fingerprint of the canonical Verilog
//! export — so any edit or corruption after export is detected at
//! read time. The exact net numbering is preserved, which makes
//! `from_axnl(to_axnl(n))` reproduce `n` field-for-field and keeps
//! the fingerprint (and therefore every characterization-cache key)
//! stable across a JSON round trip.
//!
//! Top-level document shape:
//!
//! ```json
//! {
//!   "format": "axnl-v1",
//!   "name": "...",
//!   "net_count": 42,
//!   "inputs":  [{"name": "a", "nets": [0, 1, 2, 3]}],
//!   "outputs": [{"name": "p", "nets": [9, 12, 15, 17]}],
//!   "constants": [{"net": 8, "value": false}],
//!   "cells": [
//!     {"type": "LUT6_2", "init": "6666666666666666",
//!      "inputs": [0, 4, 8, 8, 8, 8], "o6": 9, "o5": 10},
//!     {"type": "CARRY4", "ci": 8,
//!      "s": [10, 11, 12, 13], "di": [0, 1, 2, 3],
//!      "o": [14, 15, 16, 17], "co": [null, null, null, 18]}
//!   ],
//!   "hash": "9c1f0e6b1a2d3c4b"
//! }
//! ```
//!
//! The reader validates everything the writer guarantees — format
//! string, id ranges, single-driver coverage of every net, INIT
//! width — and reports violations as [`NetioError::Schema`] with a
//! JSON path, or [`NetioError::HashMismatch`] when the document and
//! its payload disagree.

use std::collections::BTreeMap;

use axmul_fabric::export::to_verilog;
use axmul_fabric::{Cell, CellId, Driver, Init, NetId, Netlist};

use crate::error::NetioError;
use crate::json::{self, Value};
use crate::verilog::{MAX_CELLS, MAX_NETS};

/// The format tag this module writes and the only one it reads.
pub const AXNL_FORMAT: &str = "axnl-v1";

/// 64-bit FNV-1a over a byte string.
#[must_use]
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The canonical content fingerprint of a netlist: FNV-1a over its
/// structural-Verilog export. Because `export → import → export` is a
/// byte fixpoint, an imported netlist fingerprints identically to its
/// in-process twin — which is what lets warm characterization caches
/// hit for externally supplied designs.
#[must_use]
pub fn fingerprint(netlist: &Netlist) -> u64 {
    fnv1a(to_verilog(netlist).as_bytes())
}

fn id(net: NetId) -> Value {
    Value::Num(net.index() as f64)
}

fn opt_id(net: Option<NetId>) -> Value {
    net.map_or(Value::Null, id)
}

/// Serializes a netlist as an `axnl-v1` JSON document (pretty-stable:
/// object keys render in sorted order, so output is deterministic).
#[must_use]
pub fn to_axnl(netlist: &Netlist) -> String {
    let bus = |(name, nets): &(String, Vec<NetId>)| {
        Value::obj([
            ("name", Value::str(name.clone())),
            ("nets", Value::Arr(nets.iter().copied().map(id).collect())),
        ])
    };
    let constants: Vec<Value> = netlist
        .drivers()
        .iter()
        .enumerate()
        .filter_map(|(n, d)| match d {
            Driver::Const(v) => Some(Value::obj([
                ("net", Value::Num(n as f64)),
                ("value", Value::Bool(*v)),
            ])),
            _ => None,
        })
        .collect();
    let cells: Vec<Value> = netlist
        .cells()
        .iter()
        .map(|cell| match cell {
            Cell::Lut {
                init,
                inputs,
                o6,
                o5,
            } => Value::obj([
                ("type", Value::str("LUT6_2")),
                ("init", Value::str(format!("{:016X}", init.raw()))),
                (
                    "inputs",
                    Value::Arr(inputs.iter().copied().map(id).collect()),
                ),
                ("o6", id(*o6)),
                ("o5", opt_id(*o5)),
            ]),
            Cell::Carry4 { cin, s, di, o, co } => Value::obj([
                ("type", Value::str("CARRY4")),
                ("ci", id(*cin)),
                ("s", Value::Arr(s.iter().copied().map(id).collect())),
                ("di", Value::Arr(di.iter().copied().map(id).collect())),
                ("o", Value::Arr(o.iter().copied().map(opt_id).collect())),
                ("co", Value::Arr(co.iter().copied().map(opt_id).collect())),
            ]),
        })
        .collect();
    let doc = Value::obj([
        ("format", Value::str(AXNL_FORMAT)),
        ("name", Value::str(netlist.name())),
        ("net_count", Value::Num(netlist.drivers().len() as f64)),
        (
            "inputs",
            Value::Arr(netlist.input_buses().iter().map(bus).collect()),
        ),
        (
            "outputs",
            Value::Arr(netlist.output_buses().iter().map(bus).collect()),
        ),
        ("constants", Value::Arr(constants)),
        ("cells", Value::Arr(cells)),
        ("hash", Value::str(format!("{:016x}", fingerprint(netlist)))),
    ]);
    format!("{doc}\n")
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

fn schema(path: impl Into<String>, message: impl Into<String>) -> NetioError {
    NetioError::Schema {
        path: path.into(),
        message: message.into(),
    }
}

fn get<'v>(v: &'v Value, key: &str, path: &str) -> Result<&'v Value, NetioError> {
    v.get(key)
        .ok_or_else(|| schema(format!("{path}{key}"), "missing required field"))
}

fn get_str<'v>(v: &'v Value, key: &str, path: &str) -> Result<&'v str, NetioError> {
    get(v, key, path)?
        .as_str()
        .ok_or_else(|| schema(format!("{path}{key}"), "expected a string"))
}

fn get_arr<'v>(v: &'v Value, key: &str, path: &str) -> Result<&'v [Value], NetioError> {
    get(v, key, path)?
        .as_arr()
        .ok_or_else(|| schema(format!("{path}{key}"), "expected an array"))
}

fn net_at(v: &Value, path: &str, net_count: usize) -> Result<NetId, NetioError> {
    let n = v
        .as_u64()
        .ok_or_else(|| schema(path, "expected a net id (non-negative integer)"))?;
    if (n as usize) < net_count {
        Ok(NetId::new(n as u32))
    } else {
        Err(schema(
            path,
            format!("net id {n} out of range (net_count is {net_count})"),
        ))
    }
}

fn hex64(s: &str, path: &str) -> Result<u64, NetioError> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(schema(path, "expected exactly 16 hex digits"));
    }
    u64::from_str_radix(s, 16).map_err(|_| schema(path, "expected exactly 16 hex digits"))
}

/// Tracks driver assignment while rebuilding the table, rejecting
/// double coverage with a path-qualified schema error.
struct DriverTable {
    slots: Vec<Option<Driver>>,
}

impl DriverTable {
    fn claim(&mut self, net: NetId, driver: Driver, path: &str) -> Result<(), NetioError> {
        let slot = &mut self.slots[net.index()];
        if slot.is_some() {
            return Err(schema(
                path,
                format!("net {} already has a driver", net.index()),
            ));
        }
        *slot = Some(driver);
        Ok(())
    }
}

/// Parses an `axnl-v1` document back into a validated [`Netlist`].
///
/// # Errors
///
/// [`NetioError::Json`] for malformed JSON, [`NetioError::Schema`] /
/// [`NetioError::UnsupportedFormat`] for structural violations, and
/// [`NetioError::HashMismatch`] when the `hash` field disagrees with
/// the reconstructed netlist's fingerprint.
pub fn from_axnl(text: &str) -> Result<Netlist, NetioError> {
    let doc = json::parse(text)?;
    let format = get_str(&doc, "format", "")?;
    if format != AXNL_FORMAT {
        return Err(NetioError::UnsupportedFormat {
            found: format.to_string(),
        });
    }
    let name = get_str(&doc, "name", "")?.to_string();
    let net_count = get(&doc, "net_count", "")?
        .as_u64()
        .ok_or_else(|| schema("net_count", "expected a non-negative integer"))?
        as usize;
    if net_count > MAX_NETS {
        return Err(NetioError::LimitExceeded {
            what: "nets",
            limit: MAX_NETS,
        });
    }
    let mut table = DriverTable {
        slots: vec![None; net_count],
    };

    let read_buses = |key: &'static str| -> Result<Vec<(String, Vec<NetId>)>, NetioError> {
        let arr = get_arr(&doc, key, "")?;
        let mut buses = Vec::with_capacity(arr.len());
        let mut seen = BTreeMap::new();
        for (i, bus) in arr.iter().enumerate() {
            let path = format!("{key}[{i}].");
            let bname = get_str(bus, "name", &path)?.to_string();
            if seen.insert(bname.clone(), ()).is_some() {
                return Err(schema(
                    format!("{path}name"),
                    format!("duplicate bus name `{bname}`"),
                ));
            }
            let nets = get_arr(bus, "nets", &path)?
                .iter()
                .enumerate()
                .map(|(j, v)| net_at(v, &format!("{path}nets[{j}]"), net_count))
                .collect::<Result<Vec<_>, _>>()?;
            if nets.is_empty() {
                return Err(schema(
                    format!("{path}nets"),
                    "bus must have at least 1 bit",
                ));
            }
            buses.push((bname, nets));
        }
        Ok(buses)
    };
    let inputs = read_buses("inputs")?;
    let outputs = read_buses("outputs")?;
    if inputs.len() > usize::from(u16::MAX) {
        return Err(NetioError::LimitExceeded {
            what: "input buses",
            limit: usize::from(u16::MAX),
        });
    }
    for (bus, (_, nets)) in inputs.iter().enumerate() {
        if nets.len() > usize::from(u16::MAX) {
            return Err(NetioError::LimitExceeded {
                what: "input bus bits",
                limit: usize::from(u16::MAX),
            });
        }
        for (bit, &net) in nets.iter().enumerate() {
            table.claim(
                net,
                Driver::Input(bus as u16, bit as u16),
                &format!("inputs[{bus}].nets[{bit}]"),
            )?;
        }
    }

    for (i, c) in get_arr(&doc, "constants", "")?.iter().enumerate() {
        let path = format!("constants[{i}].");
        let net = net_at(get(c, "net", &path)?, &format!("{path}net"), net_count)?;
        let value = get(c, "value", &path)?
            .as_bool()
            .ok_or_else(|| schema(format!("{path}value"), "expected a boolean"))?;
        table.claim(net, Driver::Const(value), &format!("{path}net"))?;
    }

    let cell_docs = get_arr(&doc, "cells", "")?;
    if cell_docs.len() > MAX_CELLS {
        return Err(NetioError::LimitExceeded {
            what: "cells",
            limit: MAX_CELLS,
        });
    }
    let mut cells = Vec::with_capacity(cell_docs.len());
    for (i, c) in cell_docs.iter().enumerate() {
        let path = format!("cells[{i}].");
        let cell_id = CellId::new(i as u32);
        let ty = get_str(c, "type", &path)?;
        let fixed4 = |key: &str| -> Result<[NetId; 4], NetioError> {
            let arr = get_arr(c, key, &path)?;
            if arr.len() != 4 {
                return Err(schema(
                    format!("{path}{key}"),
                    format!("expected exactly 4 net ids, found {}", arr.len()),
                ));
            }
            Ok([
                net_at(&arr[0], &format!("{path}{key}[0]"), net_count)?,
                net_at(&arr[1], &format!("{path}{key}[1]"), net_count)?,
                net_at(&arr[2], &format!("{path}{key}[2]"), net_count)?,
                net_at(&arr[3], &format!("{path}{key}[3]"), net_count)?,
            ])
        };
        let cell = match ty {
            "LUT6_2" => {
                let init = hex64(get_str(c, "init", &path)?, &format!("{path}init"))?;
                let inputs_arr = get_arr(c, "inputs", &path)?;
                if inputs_arr.len() != 6 {
                    return Err(schema(
                        format!("{path}inputs"),
                        format!("expected exactly 6 net ids, found {}", inputs_arr.len()),
                    ));
                }
                let mut pins = [NetId::new(0); 6];
                for (k, v) in inputs_arr.iter().enumerate() {
                    pins[k] = net_at(v, &format!("{path}inputs[{k}]"), net_count)?;
                }
                let o6 = net_at(get(c, "o6", &path)?, &format!("{path}o6"), net_count)?;
                table.claim(o6, Driver::LutO6(cell_id), &format!("{path}o6"))?;
                let o5 = match get(c, "o5", &path)? {
                    Value::Null => None,
                    v => {
                        let n = net_at(v, &format!("{path}o5"), net_count)?;
                        table.claim(n, Driver::LutO5(cell_id), &format!("{path}o5"))?;
                        Some(n)
                    }
                };
                Cell::Lut {
                    init: Init::from_raw(init),
                    inputs: pins,
                    o6,
                    o5,
                }
            }
            "CARRY4" => {
                let cin = net_at(get(c, "ci", &path)?, &format!("{path}ci"), net_count)?;
                let s = fixed4("s")?;
                let di = fixed4("di")?;
                let mut opt4 = |key: &str,
                                mk: fn(CellId, u8) -> Driver|
                 -> Result<[Option<NetId>; 4], NetioError> {
                    let arr = get_arr(c, key, &path)?;
                    if arr.len() != 4 {
                        return Err(schema(
                            format!("{path}{key}"),
                            format!("expected exactly 4 entries, found {}", arr.len()),
                        ));
                    }
                    let mut out = [None; 4];
                    for (k, v) in arr.iter().enumerate() {
                        if matches!(v, Value::Null) {
                            continue;
                        }
                        let n = net_at(v, &format!("{path}{key}[{k}]"), net_count)?;
                        table.claim(n, mk(cell_id, k as u8), &format!("{path}{key}[{k}]"))?;
                        out[k] = Some(n);
                    }
                    Ok(out)
                };
                let o = opt4("o", Driver::CarrySum)?;
                let co = opt4("co", Driver::CarryCout)?;
                Cell::Carry4 { cin, s, di, o, co }
            }
            other => {
                return Err(schema(
                    format!("{path}type"),
                    format!("unknown cell type `{other}` (LUT6_2 or CARRY4)"),
                ))
            }
        };
        cells.push(cell);
    }

    if let Some(net) = table.slots.iter().position(Option::is_none) {
        return Err(schema(
            "net_count",
            format!("net {net} has no driver (not an input, constant, or cell output)"),
        ));
    }
    let drivers: Vec<Driver> = table.slots.into_iter().map(Option::unwrap).collect();

    let claimed = hex64(get_str(&doc, "hash", "")?, "hash")?;
    let netlist = Netlist::from_parts(name, drivers, cells, inputs, outputs);
    let actual = fingerprint(&netlist);
    if actual != claimed {
        return Err(NetioError::HashMismatch {
            expected: actual,
            found: claimed,
        });
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("axnl sample");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let mut props = Vec::new();
        for i in 0..4 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props.push(o6);
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry_chain(zero, &props, &a);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        b.finish().unwrap()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let nl = sample();
        let doc = to_axnl(&nl);
        let back = from_axnl(&doc).unwrap();
        assert_eq!(nl.name(), back.name());
        assert_eq!(nl.drivers(), back.drivers());
        assert_eq!(nl.cells(), back.cells());
        assert_eq!(nl.input_buses(), back.input_buses());
        assert_eq!(nl.output_buses(), back.output_buses());
        assert_eq!(to_axnl(&back), doc, "to_axnl ∘ from_axnl is a fixpoint");
        assert_eq!(fingerprint(&nl), fingerprint(&back));
    }

    #[test]
    fn tampered_documents_are_rejected() {
        let doc = to_axnl(&sample());
        // Flip one INIT nibble: hash check must catch it.
        let tampered = doc.replace("6666666666666666", "6666666666666667");
        assert!(matches!(
            from_axnl(&tampered).unwrap_err(),
            NetioError::HashMismatch { .. }
        ));
        // Unknown version string.
        let wrong = doc.replace("axnl-v1", "axnl-v9");
        assert!(matches!(
            from_axnl(&wrong).unwrap_err(),
            NetioError::UnsupportedFormat { .. }
        ));
        // Not JSON at all.
        assert_eq!(from_axnl("module m").unwrap_err().code(), "bad-json");
    }

    #[test]
    fn schema_errors_carry_paths() {
        let doc = to_axnl(&sample());
        let parsed = json::parse(&doc).unwrap();
        let Value::Obj(mut map) = parsed else {
            unreachable!()
        };
        map.remove("cells");
        let err = from_axnl(&Value::Obj(map).to_string()).unwrap_err();
        match err {
            NetioError::Schema { path, .. } => assert_eq!(path, "cells"),
            other => panic!("expected schema error, got {other}"),
        }
    }
}
