//! Structural-Verilog importer for the dialect
//! [`axmul_fabric::export::to_verilog`] emits.
//!
//! The grammar is deliberately exactly the exported subset — one
//! module, scalar/`[N:0]` wire ports, scalar internal wires, `LUT6_2`
//! instantiations with a 64-bit hex `INIT` parameter, `CARRY4`
//! instantiations with named connections and 4-bit concatenations
//! (empty slots allowed), and `assign` statements onto output bits.
//! Three stages:
//!
//! 1. a hand-written lexer tracking [`Loc`] per token,
//! 2. a recursive-descent parser producing a small AST,
//! 3. an elaborator that resolves names, checks widths, single-driver
//!    and topological-order invariants, and assembles a validated
//!    [`Netlist`] via [`Netlist::from_parts`].
//!
//! **Fixpoint guarantee.** When every internal wire follows the
//! exporter's canonical `n<index>` naming, the elaborator reuses those
//! indices as net ids, so `to_verilog(from_verilog(to_verilog(n)))`
//! reproduces the input byte for byte (input and constant nets never
//! appear by index in the text, so their placement in the driver table
//! is free). Foreign files with arbitrary wire names still import —
//! they are renumbered sequentially and re-export in canonical form.
//! Cells listed out of topological order are stably sorted (a no-op
//! for exporter output); true combinational cycles are a typed error.
//!
//! Nothing in here panics on hostile input: every failure is a
//! [`NetioError`] with the source location.

use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use axmul_fabric::{Cell, CellId, Driver, Init, NetId, Netlist};

use crate::error::{Loc, NetioError};

/// Hard cap on nets an imported design may declare.
pub const MAX_NETS: usize = 1 << 20;
/// Hard cap on primitive instances.
pub const MAX_CELLS: usize = 1 << 18;
/// Hard cap on ports.
pub const MAX_PORTS: usize = 1 << 12;
/// Hard cap on the width of a single port bus.
pub const MAX_BUS_WIDTH: usize = 1 << 12;

/// Parses one structural-Verilog module into a validated [`Netlist`].
///
/// # Errors
///
/// Any lexical, grammatical or elaboration failure; see [`NetioError`].
pub fn from_verilog(text: &str) -> Result<Netlist, NetioError> {
    let module = Parser::new(text)?.module()?;
    elaborate(text, &module)
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    /// Plain decimal integer (bit indices, range bounds).
    Int(u64),
    /// `1'b0` / `1'b1`.
    BitLit(bool),
    /// Sized hex literal: value and digit count, e.g. `64'h…` (16).
    HexLit(u64, u32),
    LParen,
    RParen,
    LBrack,
    RBrack,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Hash,
    Dot,
    Eq,
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(v) => format!("number `{v}`"),
            Tok::BitLit(b) => format!("literal `1'b{}`", u8::from(*b)),
            Tok::HexLit(v, d) => format!("literal `{d}'h{v:X}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrack => "`[`".into(),
            Tok::RBrack => "`]`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Hash => "`#`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    loc: Loc,
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn loc(&self) -> Loc {
        Loc {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn err(&self, message: impl Into<String>) -> NetioError {
        NetioError::Syntax {
            loc: self.loc(),
            message: message.into(),
        }
    }

    /// Skips whitespace and `//` / `/* */` comments.
    fn skip_trivia(&mut self) -> Result<(), NetioError> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'/') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'*') => {
                    let open = self.loc();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(NetioError::Syntax {
                                    loc: open,
                                    message: "unterminated block comment".into(),
                                })
                            }
                            Some(b'*') if self.bytes.get(self.pos + 1) == Some(&b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, NetioError> {
        self.skip_trivia()?;
        let loc = self.loc();
        let Some(b) = self.peek() else {
            return Ok(Token { tok: Tok::Eof, loc });
        };
        let tok = match b {
            b'(' => self.punct(Tok::LParen),
            b')' => self.punct(Tok::RParen),
            b'[' => self.punct(Tok::LBrack),
            b']' => self.punct(Tok::RBrack),
            b'{' => self.punct(Tok::LBrace),
            b'}' => self.punct(Tok::RBrace),
            b',' => self.punct(Tok::Comma),
            b';' => self.punct(Tok::Semi),
            b':' => self.punct(Tok::Colon),
            b'#' => self.punct(Tok::Hash),
            b'.' => self.punct(Tok::Dot),
            b'=' => self.punct(Tok::Eq),
            b'0'..=b'9' => self.number()?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'\\' => self.ident()?,
            other => return Err(self.err(format!("unexpected byte {:#04x}", other))),
        };
        Ok(Token { tok, loc })
    }

    fn punct(&mut self, tok: Tok) -> Tok {
        self.bump();
        tok
    }

    fn ident(&mut self) -> Result<Tok, NetioError> {
        if self.peek() == Some(b'\\') {
            return Err(self.err("escaped identifiers are not supported"));
        }
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'$')
        ) {
            self.bump();
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_string();
        Ok(Tok::Ident(s))
    }

    /// A decimal integer, or a sized literal `<w>'b<bit>` / `<w>'h<hex>`.
    fn number(&mut self) -> Result<Tok, NetioError> {
        let mut value: u64 = 0;
        while let Some(d @ b'0'..=b'9') = self.peek() {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(d - b'0')))
                .ok_or_else(|| self.err("number does not fit 64 bits"))?;
            self.bump();
        }
        if self.peek() != Some(b'\'') {
            return Ok(Tok::Int(value));
        }
        self.bump();
        match self.bump() {
            Some(b'b' | b'B') => {
                let bit = match self.bump() {
                    Some(b'0') => false,
                    Some(b'1') => true,
                    _ => return Err(self.err("expected `0` or `1` after `'b`")),
                };
                if matches!(self.peek(), Some(b'0'..=b'9' | b'_')) {
                    return Err(self.err("only 1-bit binary literals are supported"));
                }
                Ok(Tok::BitLit(bit))
            }
            Some(b'h' | b'H') => {
                let mut digits = 0u32;
                let mut v: u64 = 0;
                while let Some(d) = self.peek() {
                    let nibble = match d {
                        b'0'..=b'9' => d - b'0',
                        b'a'..=b'f' => d - b'a' + 10,
                        b'A'..=b'F' => d - b'A' + 10,
                        _ => break,
                    };
                    if digits == 16 {
                        return Err(self.err("hex literal wider than 64 bits"));
                    }
                    v = (v << 4) | u64::from(nibble);
                    digits += 1;
                    self.bump();
                }
                if digits == 0 {
                    return Err(self.err("expected hex digits after `'h`"));
                }
                Ok(Tok::HexLit(v, digits))
            }
            _ => Err(self.err("unsupported literal base (only 'b and 'h)")),
        }
    }
}

// ---------------------------------------------------------------------
// AST + parser
// ---------------------------------------------------------------------

/// One bit-level operand: a literal or a (possibly indexed) reference.
#[derive(Debug, Clone)]
enum Bit {
    Const(bool),
    Ref {
        name: String,
        index: Option<usize>,
        loc: Loc,
    },
}

/// An expression: a single bit, or a concatenation (MSB first, empty
/// slots as `None`).
#[derive(Debug, Clone)]
struct Expr {
    bits: Vec<Option<Bit>>,
    loc: Loc,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Input,
    Output,
}

#[derive(Debug)]
struct Port {
    dir: Dir,
    name: String,
    width: usize,
    loc: Loc,
}

#[derive(Debug, Clone, Copy)]
enum ParamValue {
    Hex(u64, u32),
    Bit(bool),
    Int(u64),
}

#[derive(Debug)]
struct Instance {
    primitive: String,
    name: String,
    params: Vec<(String, ParamValue, Loc)>,
    conns: Vec<(String, Expr, Loc)>,
    loc: Loc,
}

#[derive(Debug)]
enum Item {
    Wire { name: String, loc: Loc },
    Instance(Instance),
    Assign { lhs: Bit, rhs: Expr, loc: Loc },
}

#[derive(Debug)]
struct Module {
    name: String,
    ports: Vec<Port>,
    items: Vec<Item>,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(text: &str) -> Result<Self, NetioError> {
        let mut lexer = Lexer::new(text);
        let mut tokens = Vec::new();
        loop {
            let t = lexer.next_token()?;
            let done = t.tok == Tok::Eof;
            tokens.push(t);
            if done {
                break;
            }
        }
        Ok(Parser { tokens, pos: 0 })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, loc: Loc, message: impl Into<String>) -> NetioError {
        NetioError::Syntax {
            loc,
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Token, NetioError> {
        let t = self.bump();
        if &t.tok == tok {
            Ok(t)
        } else {
            Err(self.err_at(
                t.loc,
                format!("expected {what}, found {}", t.tok.describe()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Loc), NetioError> {
        let t = self.bump();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.loc)),
            other => Err(self.err_at(
                t.loc,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<Loc, NetioError> {
        let (s, loc) = self.ident(&format!("keyword `{kw}`"))?;
        if s == kw {
            Ok(loc)
        } else {
            Err(self.err_at(loc, format!("expected keyword `{kw}`, found `{s}`")))
        }
    }

    fn int(&mut self, what: &str) -> Result<(u64, Loc), NetioError> {
        let t = self.bump();
        match t.tok {
            Tok::Int(v) => Ok((v, t.loc)),
            other => Err(self.err_at(
                t.loc,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    fn module(&mut self) -> Result<Module, NetioError> {
        self.keyword("module")?;
        let (name, _) = self.ident("module name")?;
        self.expect(&Tok::LParen, "`(` opening the port list")?;
        let mut ports = Vec::new();
        loop {
            ports.push(self.port()?);
            if ports.len() > MAX_PORTS {
                return Err(NetioError::LimitExceeded {
                    what: "ports",
                    limit: MAX_PORTS,
                });
            }
            let t = self.bump();
            match t.tok {
                Tok::Comma => {}
                Tok::RParen => break,
                other => {
                    return Err(self.err_at(
                        t.loc,
                        format!(
                            "expected `,` or `)` in port list, found {}",
                            other.describe()
                        ),
                    ))
                }
            }
        }
        self.expect(&Tok::Semi, "`;` after the port list")?;
        let mut items = Vec::new();
        loop {
            let t = self.peek().clone();
            match &t.tok {
                Tok::Ident(kw) if kw == "endmodule" => {
                    self.bump();
                    break;
                }
                Tok::Ident(kw) if kw == "wire" => {
                    self.bump();
                    let (wname, wloc) = self.ident("wire name")?;
                    if self.peek().tok == Tok::LBrack {
                        return Err(self.err_at(wloc, "vector wires are not supported"));
                    }
                    self.expect(&Tok::Semi, "`;` after wire declaration")?;
                    items.push(Item::Wire {
                        name: wname,
                        loc: wloc,
                    });
                }
                Tok::Ident(kw) if kw == "assign" => {
                    let loc = self.bump().loc;
                    let lhs = self.bit("assign target")?;
                    self.expect(&Tok::Eq, "`=` in assign")?;
                    let rhs = self.expr()?;
                    self.expect(&Tok::Semi, "`;` after assign")?;
                    items.push(Item::Assign { lhs, rhs, loc });
                }
                Tok::Ident(_) => items.push(Item::Instance(self.instance()?)),
                Tok::Eof => {
                    return Err(self.err_at(t.loc, "unexpected end of input (missing `endmodule`?)"))
                }
                other => {
                    return Err(self.err_at(
                        t.loc,
                        format!(
                            "expected a wire declaration, instantiation, `assign` or `endmodule`, \
                             found {}",
                            other.describe()
                        ),
                    ))
                }
            }
            if items.len() > MAX_CELLS + MAX_NETS {
                return Err(NetioError::LimitExceeded {
                    what: "module items",
                    limit: MAX_CELLS + MAX_NETS,
                });
            }
        }
        let t = self.bump();
        if t.tok != Tok::Eof {
            return Err(self.err_at(
                t.loc,
                format!("trailing {} after `endmodule`", t.tok.describe()),
            ));
        }
        Ok(Module { name, ports, items })
    }

    fn port(&mut self) -> Result<Port, NetioError> {
        let (kw, loc) = self.ident("`input` or `output`")?;
        let dir = match kw.as_str() {
            "input" => Dir::Input,
            "output" => Dir::Output,
            other => {
                return Err(self.err_at(
                    loc,
                    format!("expected `input` or `output`, found `{other}`"),
                ))
            }
        };
        // Optional `wire` keyword.
        if matches!(&self.peek().tok, Tok::Ident(s) if s == "wire") {
            self.bump();
        }
        let width = if self.peek().tok == Tok::LBrack {
            self.bump();
            let (msb, mloc) = self.int("range MSB")?;
            self.expect(&Tok::Colon, "`:` in range")?;
            let (lsb, lloc) = self.int("range LSB")?;
            self.expect(&Tok::RBrack, "`]` closing the range")?;
            if lsb != 0 {
                return Err(self.err_at(lloc, "only [N:0] ranges are supported"));
            }
            let w = (msb as usize).saturating_add(1);
            if w > MAX_BUS_WIDTH {
                return Err(self.err_at(mloc, format!("bus wider than {MAX_BUS_WIDTH} bits")));
            }
            w
        } else {
            1
        };
        let (name, nloc) = self.ident("port name")?;
        let _ = nloc;
        Ok(Port {
            dir,
            name,
            width,
            loc,
        })
    }

    fn instance(&mut self) -> Result<Instance, NetioError> {
        let (primitive, loc) = self.ident("primitive name")?;
        let mut params = Vec::new();
        if self.peek().tok == Tok::Hash {
            self.bump();
            self.expect(&Tok::LParen, "`(` opening the parameter list")?;
            loop {
                self.expect(&Tok::Dot, "`.` starting a parameter")?;
                let (pname, ploc) = self.ident("parameter name")?;
                self.expect(&Tok::LParen, "`(` around the parameter value")?;
                let t = self.bump();
                let value = match t.tok {
                    Tok::HexLit(v, d) => ParamValue::Hex(v, d),
                    Tok::BitLit(b) => ParamValue::Bit(b),
                    Tok::Int(v) => ParamValue::Int(v),
                    other => {
                        return Err(self.err_at(
                            t.loc,
                            format!(
                                "expected a literal parameter value, found {}",
                                other.describe()
                            ),
                        ))
                    }
                };
                self.expect(&Tok::RParen, "`)` after the parameter value")?;
                params.push((pname, value, ploc));
                let t = self.bump();
                match t.tok {
                    Tok::Comma => {}
                    Tok::RParen => break,
                    other => {
                        return Err(self.err_at(
                            t.loc,
                            format!(
                                "expected `,` or `)` in parameters, found {}",
                                other.describe()
                            ),
                        ))
                    }
                }
            }
        }
        let (name, _) = self.ident("instance name")?;
        self.expect(&Tok::LParen, "`(` opening the connection list")?;
        let mut conns = Vec::new();
        if self.peek().tok == Tok::RParen {
            self.bump();
        } else {
            loop {
                self.expect(&Tok::Dot, "`.` starting a connection")?;
                let (port, ploc) = self.ident("port name")?;
                self.expect(&Tok::LParen, "`(` around the connection")?;
                let expr = self.expr()?;
                self.expect(&Tok::RParen, "`)` after the connection")?;
                conns.push((port, expr, ploc));
                let t = self.bump();
                match t.tok {
                    Tok::Comma => {}
                    Tok::RParen => break,
                    other => {
                        return Err(self.err_at(
                            t.loc,
                            format!(
                                "expected `,` or `)` in connections, found {}",
                                other.describe()
                            ),
                        ))
                    }
                }
            }
        }
        self.expect(&Tok::Semi, "`;` after the instantiation")?;
        Ok(Instance {
            primitive,
            name,
            params,
            conns,
            loc,
        })
    }

    /// A single-bit operand: literal or (indexed) identifier.
    fn bit(&mut self, what: &str) -> Result<Bit, NetioError> {
        let t = self.bump();
        match t.tok {
            Tok::BitLit(b) => Ok(Bit::Const(b)),
            Tok::Ident(name) => {
                let index = if self.peek().tok == Tok::LBrack {
                    self.bump();
                    let (i, iloc) = self.int("bit index")?;
                    self.expect(&Tok::RBrack, "`]` after the bit index")?;
                    if i as usize >= MAX_BUS_WIDTH {
                        return Err(self.err_at(iloc, format!("bit index above {MAX_BUS_WIDTH}")));
                    }
                    Some(i as usize)
                } else {
                    None
                };
                Ok(Bit::Ref {
                    name,
                    index,
                    loc: t.loc,
                })
            }
            other => Err(self.err_at(
                t.loc,
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    /// A connection expression: one bit, or a `{…}` concatenation whose
    /// slots may be empty (the exporter's unused CARRY4 outputs).
    fn expr(&mut self) -> Result<Expr, NetioError> {
        let loc = self.peek().loc;
        if self.peek().tok != Tok::LBrace {
            // Empty connection `.O()` shows up as the closing paren.
            if self.peek().tok == Tok::RParen {
                return Ok(Expr { bits: vec![], loc });
            }
            let b = self.bit("a net or literal")?;
            return Ok(Expr {
                bits: vec![Some(b)],
                loc,
            });
        }
        self.bump();
        let mut bits = Vec::new();
        loop {
            match self.peek().tok {
                Tok::Comma => {
                    bits.push(None);
                    self.bump();
                }
                Tok::RBrace => {
                    bits.push(None);
                    self.bump();
                    break;
                }
                _ => {
                    bits.push(Some(self.bit("a net or literal")?));
                    let t = self.bump();
                    match t.tok {
                        Tok::Comma => {}
                        Tok::RBrace => break,
                        other => {
                            return Err(self.err_at(
                                t.loc,
                                format!(
                                    "expected `,` or `}}` in concatenation, found {}",
                                    other.describe()
                                ),
                            ))
                        }
                    }
                }
            }
            if bits.len() > MAX_BUS_WIDTH {
                return Err(self.err_at(loc, format!("concatenation wider than {MAX_BUS_WIDTH}")));
            }
        }
        Ok(Expr { bits, loc })
    }
}

// ---------------------------------------------------------------------
// Elaboration
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Sym {
    /// Input bus: index into the inputs vec, plus its nets.
    InBus { bus: usize },
    /// Output bus: index into the outputs vec.
    OutBus { bus: usize },
    /// Internal wire: its net id.
    Wire { net: u32, loc: Loc, driven: bool },
}

struct Elab {
    /// One slot per net; `None` = not yet driven.
    drivers: Vec<Option<Driver>>,
    /// Net indices below `drivers.len()` that no wire declaration
    /// claimed, available for inputs/constants (canonical mode).
    gaps: Vec<u32>,
    symbols: HashMap<String, Sym>,
    input_nets: Vec<Vec<NetId>>,
    input_names: Vec<String>,
    /// Per output bus: name, declaration loc, and per-bit resolved net.
    outputs: Vec<(String, Loc, Vec<Option<NetId>>)>,
    consts: [Option<u32>; 2],
}

impl Elab {
    /// Mints a net id for an input/constant: reuse a numbering gap if
    /// one exists, else grow the driver table.
    fn alloc_aux(&mut self) -> Result<u32, NetioError> {
        if let Some(idx) = self.gaps.pop() {
            return Ok(idx);
        }
        let idx = self.drivers.len();
        if idx >= MAX_NETS {
            return Err(NetioError::LimitExceeded {
                what: "nets",
                limit: MAX_NETS,
            });
        }
        self.drivers.push(None);
        Ok(idx as u32)
    }

    fn const_net(&mut self, value: bool) -> Result<u32, NetioError> {
        if let Some(n) = self.consts[usize::from(value)] {
            return Ok(n);
        }
        let n = self.alloc_aux()?;
        self.drivers[n as usize] = Some(Driver::Const(value));
        self.consts[usize::from(value)] = Some(n);
        Ok(n)
    }

    /// Resolves a bit used as a cell/assign *source* to its net.
    fn source_net(&mut self, bit: &Bit) -> Result<u32, NetioError> {
        match bit {
            Bit::Const(b) => self.const_net(*b),
            Bit::Ref { name, index, loc } => match self.symbols.get(name) {
                Some(Sym::InBus { bus }) => {
                    let nets = &self.input_nets[*bus];
                    let i = index.unwrap_or(0);
                    if index.is_none() && nets.len() != 1 {
                        return Err(NetioError::WidthMismatch {
                            loc: *loc,
                            what: format!("`{name}`"),
                            expected: 1,
                            found: nets.len(),
                        });
                    }
                    nets.get(i)
                        .copied()
                        .map(|n| n.index() as u32)
                        .ok_or(NetioError::OutOfRange {
                            loc: *loc,
                            name: name.clone(),
                            index: i,
                            width: nets.len(),
                        })
                }
                Some(Sym::Wire { net, .. }) => Ok(*net),
                Some(Sym::OutBus { .. }) => Err(NetioError::UnknownNet {
                    loc: *loc,
                    name: format!("{name} (output ports cannot be read back)"),
                }),
                None => Err(NetioError::UnknownNet {
                    loc: *loc,
                    name: name.clone(),
                }),
            },
        }
    }

    /// Resolves a bit used as a cell-output *target*, marks it driven,
    /// and returns the net. Targets may be declared wires or output
    /// port bits (the latter mints a fresh net).
    fn target_net(&mut self, bit: &Bit, driver: Driver) -> Result<u32, NetioError> {
        let Bit::Ref { name, index, loc } = bit else {
            return Err(NetioError::Syntax {
                loc: Loc::default(),
                message: "a literal cannot be driven".into(),
            });
        };
        match self.symbols.get_mut(name) {
            Some(Sym::Wire { net, driven, .. }) => {
                if *driven {
                    return Err(NetioError::DuplicateDriver {
                        loc: *loc,
                        name: name.clone(),
                    });
                }
                *driven = true;
                let net = *net;
                self.drivers[net as usize] = Some(driver);
                Ok(net)
            }
            Some(Sym::OutBus { bus }) => {
                let bus = *bus;
                let width = self.outputs[bus].2.len();
                let i = index.unwrap_or(0);
                if index.is_none() && width != 1 {
                    return Err(NetioError::WidthMismatch {
                        loc: *loc,
                        what: format!("`{name}`"),
                        expected: 1,
                        found: width,
                    });
                }
                if i >= width {
                    return Err(NetioError::OutOfRange {
                        loc: *loc,
                        name: name.clone(),
                        index: i,
                        width,
                    });
                }
                if self.outputs[bus].2[i].is_some() {
                    return Err(NetioError::DuplicateDriver {
                        loc: *loc,
                        name: format!("{name}[{i}]"),
                    });
                }
                let net = self.alloc_aux()?;
                self.drivers[net as usize] = Some(driver);
                self.outputs[bus].2[i] = Some(NetId::new(net));
                Ok(net)
            }
            Some(Sym::InBus { .. }) => Err(NetioError::DuplicateDriver {
                loc: *loc,
                name: name.clone(),
            }),
            None => Err(NetioError::UnknownNet {
                loc: *loc,
                name: name.clone(),
            }),
        }
    }
}

/// Scans the raw text for the exporter's provenance comment, which
/// preserves the (unsanitized) netlist name across a round trip.
fn source_name(text: &str) -> Option<&str> {
    const TAG: &str = "// Generated by axmul-fabric: ";
    text.lines()
        .take_while(|l| l.trim_start().starts_with("//") || l.trim().is_empty())
        .find_map(|l| l.strip_prefix(TAG))
}

/// Requires an expression to be exactly one present bit.
fn single_bit<'e>(expr: &'e Expr, what: &str) -> Result<&'e Bit, NetioError> {
    match expr.bits.as_slice() {
        [Some(b)] => Ok(b),
        bits => Err(NetioError::WidthMismatch {
            loc: expr.loc,
            what: what.to_string(),
            expected: 1,
            found: bits.iter().filter(|b| b.is_some()).count(),
        }),
    }
}

/// Requires an expression to be a 4-slot concatenation (or a single
/// bit for width-1 contexts is *not* allowed here), returning slots in
/// LSB-first order (the text is MSB-first).
fn four_slots<'e>(expr: &'e Expr, what: &str) -> Result<[Option<&'e Bit>; 4], NetioError> {
    if expr.bits.len() != 4 {
        return Err(NetioError::WidthMismatch {
            loc: expr.loc,
            what: what.to_string(),
            expected: 4,
            found: expr.bits.len(),
        });
    }
    Ok([
        expr.bits[3].as_ref(),
        expr.bits[2].as_ref(),
        expr.bits[1].as_ref(),
        expr.bits[0].as_ref(),
    ])
}

fn elaborate(text: &str, module: &Module) -> Result<Netlist, NetioError> {
    // --- Pass 1: wires decide the numbering mode. -----------------
    let wires: Vec<(&String, Loc)> = module
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Wire { name, loc } => Some((name, *loc)),
            _ => None,
        })
        .collect();
    if wires.len() > MAX_NETS {
        return Err(NetioError::LimitExceeded {
            what: "nets",
            limit: MAX_NETS,
        });
    }
    let canonical: Option<Vec<u32>> = {
        let mut ids = Vec::with_capacity(wires.len());
        let ok = wires.iter().all(|(name, _)| {
            name.strip_prefix('n')
                .filter(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
                .and_then(|d| d.parse::<u32>().ok())
                .filter(|&i| (i as usize) < MAX_NETS)
                .map(|i| ids.push(i))
                .is_some()
        });
        ok.then_some(ids)
    };

    let mut elab = Elab {
        drivers: Vec::new(),
        gaps: Vec::new(),
        symbols: HashMap::new(),
        input_nets: Vec::new(),
        input_names: Vec::new(),
        outputs: Vec::new(),
        consts: [None, None],
    };

    // Declare wires (canonical ids or sequential).
    match &canonical {
        Some(ids) => {
            let top = ids.iter().map(|&i| i as usize + 1).max().unwrap_or(0);
            elab.drivers = vec![None; top];
            let mut claimed = vec![false; top];
            for ((name, loc), &id) in wires.iter().zip(ids) {
                if claimed[id as usize] {
                    return Err(NetioError::DuplicateDriver {
                        loc: *loc,
                        name: (*name).clone(),
                    });
                }
                claimed[id as usize] = true;
                elab.symbols.insert(
                    (*name).clone(),
                    Sym::Wire {
                        net: id,
                        loc: *loc,
                        driven: false,
                    },
                );
            }
            // Unclaimed indices become the pool for inputs/constants
            // (popped lowest-first to mirror the builder's layout).
            elab.gaps = (0..top as u32)
                .filter(|&i| !claimed[i as usize])
                .rev()
                .collect();
        }
        None => {
            for (name, loc) in &wires {
                let id = elab.alloc_aux()?;
                match elab.symbols.entry((*name).clone()) {
                    Entry::Occupied(_) => {
                        return Err(NetioError::DuplicateDriver {
                            loc: *loc,
                            name: (*name).clone(),
                        })
                    }
                    Entry::Vacant(v) => v.insert(Sym::Wire {
                        net: id,
                        loc: *loc,
                        driven: false,
                    }),
                };
            }
        }
    }

    // --- Pass 2: ports. -------------------------------------------
    for port in &module.ports {
        if elab.symbols.contains_key(&port.name) {
            return Err(NetioError::DuplicateDriver {
                loc: port.loc,
                name: port.name.clone(),
            });
        }
        match port.dir {
            Dir::Input => {
                let bus = elab.input_nets.len();
                if bus >= usize::from(u16::MAX) || port.width > usize::from(u16::MAX) {
                    return Err(NetioError::LimitExceeded {
                        what: "input buses",
                        limit: usize::from(u16::MAX),
                    });
                }
                let mut nets = Vec::with_capacity(port.width);
                for bit in 0..port.width {
                    let n = elab.alloc_aux()?;
                    elab.drivers[n as usize] = Some(Driver::Input(bus as u16, bit as u16));
                    nets.push(NetId::new(n));
                }
                elab.input_nets.push(nets);
                elab.input_names.push(port.name.clone());
                elab.symbols.insert(port.name.clone(), Sym::InBus { bus });
            }
            Dir::Output => {
                let bus = elab.outputs.len();
                elab.outputs
                    .push((port.name.clone(), port.loc, vec![None; port.width]));
                elab.symbols.insert(port.name.clone(), Sym::OutBus { bus });
            }
        }
    }

    // --- Pass 3: cells and assigns, in file order. ----------------
    let mut cells: Vec<Cell> = Vec::new();
    // Driver slots referencing provisional (file-order) cell ids, to be
    // remapped after the topological sort.
    let mut cell_driven: Vec<(u32, Driver)> = Vec::new();
    for item in &module.items {
        match item {
            Item::Wire { .. } => {}
            Item::Instance(inst) => {
                if cells.len() >= MAX_CELLS {
                    return Err(NetioError::LimitExceeded {
                        what: "cells",
                        limit: MAX_CELLS,
                    });
                }
                let cell_id = CellId::new(cells.len() as u32);
                let cell = match inst.primitive.as_str() {
                    "LUT6_2" => elab_lut(&mut elab, inst, cell_id, &mut cell_driven)?,
                    "CARRY4" => elab_carry(&mut elab, inst, cell_id, &mut cell_driven)?,
                    other => {
                        return Err(NetioError::UnknownPrimitive {
                            loc: inst.loc,
                            primitive: other.to_string(),
                        })
                    }
                };
                cells.push(cell);
            }
            Item::Assign { lhs, rhs, loc } => {
                let Bit::Ref {
                    name,
                    index,
                    loc: lloc,
                } = lhs
                else {
                    return Err(NetioError::Syntax {
                        loc: *loc,
                        message: "assign target must be an output port bit".into(),
                    });
                };
                let Some(Sym::OutBus { bus }) = elab.symbols.get(name) else {
                    return Err(NetioError::Syntax {
                        loc: *lloc,
                        message: format!("assign target `{name}` is not an output port"),
                    });
                };
                let bus = *bus;
                let width = elab.outputs[bus].2.len();
                let i = index.unwrap_or(0);
                if index.is_none() && width != 1 {
                    return Err(NetioError::WidthMismatch {
                        loc: *lloc,
                        what: format!("`{name}`"),
                        expected: 1,
                        found: width,
                    });
                }
                if i >= width {
                    return Err(NetioError::OutOfRange {
                        loc: *lloc,
                        name: name.clone(),
                        index: i,
                        width,
                    });
                }
                if elab.outputs[bus].2[i].is_some() {
                    return Err(NetioError::DuplicateDriver {
                        loc: *lloc,
                        name: format!("{name}[{i}]"),
                    });
                }
                let src = elab.source_net(single_bit(rhs, &format!("assign to `{name}`"))?)?;
                elab.outputs[bus].2[i] = Some(NetId::new(src));
            }
        }
    }

    // --- Pass 4: completeness. ------------------------------------
    for sym in elab.symbols.values() {
        if let Sym::Wire {
            driven: false,
            loc,
            net,
        } = sym
        {
            let name = format!("n{net}");
            // Find the declared name for the message (canonical names
            // match `n{net}`; sequential mode needs the reverse map).
            let declared = elab
                .symbols
                .iter()
                .find_map(|(k, v)| match v {
                    Sym::Wire { net: n, .. } if n == net => Some(k.clone()),
                    _ => None,
                })
                .unwrap_or(name);
            return Err(NetioError::UndrivenNet {
                loc: *loc,
                name: declared,
            });
        }
    }
    for (name, loc, bits) in &elab.outputs {
        if let Some(i) = bits.iter().position(Option::is_none) {
            return Err(NetioError::UndrivenNet {
                loc: *loc,
                name: if bits.len() == 1 {
                    name.clone()
                } else {
                    format!("{name}[{i}]")
                },
            });
        }
    }

    // --- Pass 5: stable topological order. ------------------------
    let order = topo_order(&cells, &elab.drivers, &cell_driven)?;
    let mut perm = vec![0u32; order.len()];
    for (new, &old) in order.iter().enumerate() {
        perm[old] = new as u32;
    }
    let sorted: Vec<Cell> = order.iter().map(|&i| cells[i].clone()).collect();
    for (net, driver) in &cell_driven {
        let remap = |c: CellId| CellId::new(perm[c.index()]);
        elab.drivers[*net as usize] = Some(match *driver {
            Driver::LutO6(c) => Driver::LutO6(remap(c)),
            Driver::LutO5(c) => Driver::LutO5(remap(c)),
            Driver::CarrySum(c, k) => Driver::CarrySum(remap(c), k),
            Driver::CarryCout(c, k) => Driver::CarryCout(remap(c), k),
            other => other,
        });
    }

    // Leftover numbering gaps are unreferenced filler nets: tie them
    // low so the driver table is total (they print nowhere).
    let drivers: Vec<Driver> = elab
        .drivers
        .into_iter()
        .map(|d| d.unwrap_or(Driver::Const(false)))
        .collect();

    let inputs: Vec<(String, Vec<NetId>)> =
        elab.input_names.into_iter().zip(elab.input_nets).collect();
    let outputs: Vec<(String, Vec<NetId>)> = elab
        .outputs
        .into_iter()
        .map(|(name, _, bits)| {
            (
                name,
                bits.into_iter()
                    .map(|b| b.expect("checked above"))
                    .collect(),
            )
        })
        .collect();

    let name = source_name(text).unwrap_or(&module.name).to_string();
    Ok(Netlist::from_parts(name, drivers, sorted, inputs, outputs))
}

fn elab_lut(
    elab: &mut Elab,
    inst: &Instance,
    cell: CellId,
    cell_driven: &mut Vec<(u32, Driver)>,
) -> Result<Cell, NetioError> {
    let mut init: Option<u64> = None;
    for (pname, value, ploc) in &inst.params {
        if pname != "INIT" {
            return Err(NetioError::BadPort {
                loc: *ploc,
                cell: inst.name.clone(),
                message: format!("unknown parameter `{pname}`"),
            });
        }
        match value {
            ParamValue::Hex(v, 16) => init = Some(*v),
            ParamValue::Hex(_, d) => {
                return Err(NetioError::BadInit {
                    loc: *ploc,
                    message: format!("expected 16 hex digits (64'h…), found {d}"),
                })
            }
            ParamValue::Bit(b) => {
                return Err(NetioError::BadInit {
                    loc: *ploc,
                    message: format!(
                        "expected a sized hex literal (64'h…), found 1'b{}",
                        u8::from(*b)
                    ),
                })
            }
            ParamValue::Int(v) => {
                return Err(NetioError::BadInit {
                    loc: *ploc,
                    message: format!("expected a sized hex literal (64'h…), found {v}"),
                })
            }
        }
    }
    let Some(init) = init else {
        return Err(NetioError::BadInit {
            loc: inst.loc,
            message: "LUT6_2 without an INIT parameter".into(),
        });
    };

    let mut pins: [Option<u32>; 6] = [None; 6];
    let mut o6: Option<u32> = None;
    let mut o5: Option<u32> = None;
    for (port, expr, ploc) in &inst.conns {
        let dup = |had: bool| -> Result<(), NetioError> {
            if had {
                Err(NetioError::BadPort {
                    loc: *ploc,
                    cell: inst.name.clone(),
                    message: format!("port `{port}` connected twice"),
                })
            } else {
                Ok(())
            }
        };
        match port.as_str() {
            "I0" | "I1" | "I2" | "I3" | "I4" | "I5" => {
                let k = (port.as_bytes()[1] - b'0') as usize;
                dup(pins[k].is_some())?;
                pins[k] = Some(elab.source_net(single_bit(expr, &format!("pin `{port}`"))?)?);
            }
            "O6" => {
                dup(o6.is_some())?;
                let bit = single_bit(expr, "pin `O6`")?;
                let n = elab.target_net(bit, Driver::LutO6(cell))?;
                cell_driven.push((n, Driver::LutO6(cell)));
                o6 = Some(n);
            }
            "O5" => {
                dup(o5.is_some())?;
                if expr.bits.is_empty() {
                    continue; // `.O5()` — explicitly unconnected.
                }
                let bit = single_bit(expr, "pin `O5`")?;
                let n = elab.target_net(bit, Driver::LutO5(cell))?;
                cell_driven.push((n, Driver::LutO5(cell)));
                o5 = Some(n);
            }
            other => {
                return Err(NetioError::BadPort {
                    loc: *ploc,
                    cell: inst.name.clone(),
                    message: format!("LUT6_2 has no port `{other}`"),
                })
            }
        }
    }
    let inputs = match pins {
        [Some(a), Some(b), Some(c), Some(d), Some(e), Some(f)] => [
            NetId::new(a),
            NetId::new(b),
            NetId::new(c),
            NetId::new(d),
            NetId::new(e),
            NetId::new(f),
        ],
        _ => {
            let missing = (0..6)
                .filter(|&k| pins[k].is_none())
                .map(|k| format!("I{k}"))
                .collect::<Vec<_>>()
                .join(", ");
            return Err(NetioError::BadPort {
                loc: inst.loc,
                cell: inst.name.clone(),
                message: format!("missing input pin(s) {missing}"),
            });
        }
    };
    let Some(o6) = o6 else {
        return Err(NetioError::BadPort {
            loc: inst.loc,
            cell: inst.name.clone(),
            message: "missing output pin O6".into(),
        });
    };
    Ok(Cell::Lut {
        init: Init::from_raw(init),
        inputs,
        o6: NetId::new(o6),
        o5: o5.map(NetId::new),
    })
}

fn elab_carry(
    elab: &mut Elab,
    inst: &Instance,
    cell: CellId,
    cell_driven: &mut Vec<(u32, Driver)>,
) -> Result<Cell, NetioError> {
    if let Some((pname, _, ploc)) = inst.params.first() {
        return Err(NetioError::BadPort {
            loc: *ploc,
            cell: inst.name.clone(),
            message: format!("CARRY4 takes no parameters (found `{pname}`)"),
        });
    }
    let mut cin: Option<u32> = None;
    let mut di: Option<[Option<u32>; 4]> = None;
    let mut s: Option<[Option<u32>; 4]> = None;
    let mut o: [Option<NetId>; 4] = [None; 4];
    let mut co: [Option<NetId>; 4] = [None; 4];
    let mut seen_o = false;
    let mut seen_co = false;
    for (port, expr, ploc) in &inst.conns {
        let dup = |had: bool| -> Result<(), NetioError> {
            if had {
                Err(NetioError::BadPort {
                    loc: *ploc,
                    cell: inst.name.clone(),
                    message: format!("port `{port}` connected twice"),
                })
            } else {
                Ok(())
            }
        };
        match port.as_str() {
            "CI" => {
                dup(cin.is_some())?;
                cin = Some(elab.source_net(single_bit(expr, "pin `CI`")?)?);
            }
            "CYINIT" => match single_bit(expr, "pin `CYINIT`")? {
                Bit::Const(false) => {}
                _ => {
                    return Err(NetioError::BadPort {
                        loc: *ploc,
                        cell: inst.name.clone(),
                        message: "CYINIT must be tied to 1'b0 (the fabric model has no \
                                  CYINIT input)"
                            .into(),
                    })
                }
            },
            "DI" | "S" => {
                let target = if port == "DI" { &mut di } else { &mut s };
                dup(target.is_some())?;
                let slots = four_slots(expr, &format!("pin `{port}`"))?;
                let mut nets = [None; 4];
                for (k, slot) in slots.into_iter().enumerate() {
                    let Some(bit) = slot else {
                        return Err(NetioError::WidthMismatch {
                            loc: expr.loc,
                            what: format!("pin `{port}`"),
                            expected: 4,
                            found: slots.iter().filter(|b| b.is_some()).count(),
                        });
                    };
                    nets[k] = Some(elab.source_net(bit)?);
                }
                *target = Some(nets);
            }
            "O" | "CO" => {
                let is_o = port == "O";
                dup(if is_o { seen_o } else { seen_co })?;
                if is_o {
                    seen_o = true;
                } else {
                    seen_co = true;
                }
                if expr.bits.is_empty() {
                    continue; // `.O()` — all four unused.
                }
                let slots = four_slots(expr, &format!("pin `{port}`"))?;
                for (k, slot) in slots.into_iter().enumerate() {
                    let Some(bit) = slot else { continue };
                    let driver = if is_o {
                        Driver::CarrySum(cell, k as u8)
                    } else {
                        Driver::CarryCout(cell, k as u8)
                    };
                    let n = elab.target_net(bit, driver)?;
                    cell_driven.push((n, driver));
                    if is_o {
                        o[k] = Some(NetId::new(n));
                    } else {
                        co[k] = Some(NetId::new(n));
                    }
                }
            }
            other => {
                return Err(NetioError::BadPort {
                    loc: *ploc,
                    cell: inst.name.clone(),
                    message: format!("CARRY4 has no port `{other}`"),
                })
            }
        }
    }
    let require4 = |v: Option<[Option<u32>; 4]>, port: &str| -> Result<[NetId; 4], NetioError> {
        let Some(slots) = v else {
            return Err(NetioError::BadPort {
                loc: inst.loc,
                cell: inst.name.clone(),
                message: format!("missing input pin {port}"),
            });
        };
        Ok(slots.map(|n| NetId::new(n.expect("filled by four_slots walk"))))
    };
    let Some(cin) = cin else {
        return Err(NetioError::BadPort {
            loc: inst.loc,
            cell: inst.name.clone(),
            message: "missing input pin CI".into(),
        });
    };
    Ok(Cell::Carry4 {
        cin: NetId::new(cin),
        s: require4(s, "S")?,
        di: require4(di, "DI")?,
        o,
        co,
    })
}

/// Stable topological order over cells: Kahn's algorithm with a
/// min-index heap, so an already-sorted cell list (every exporter
/// output) comes back as the identity permutation.
fn topo_order(
    cells: &[Cell],
    drivers: &[Option<Driver>],
    cell_driven: &[(u32, Driver)],
) -> Result<Vec<usize>, NetioError> {
    let _ = cell_driven;
    // net -> producing cell (file order).
    let producer: Vec<Option<usize>> = drivers
        .iter()
        .map(|d| match d {
            Some(
                Driver::LutO6(c)
                | Driver::LutO5(c)
                | Driver::CarrySum(c, _)
                | Driver::CarryCout(c, _),
            ) => Some(c.index()),
            _ => None,
        })
        .collect();
    let mut indegree = vec![0usize; cells.len()];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); cells.len()];
    for (i, cell) in cells.iter().enumerate() {
        let mut dep = |net: NetId| {
            if let Some(Some(p)) = producer.get(net.index()) {
                if *p != i {
                    edges[*p].push(i);
                    indegree[i] += 1;
                }
            }
        };
        match cell {
            Cell::Lut { inputs, .. } => inputs.iter().copied().for_each(&mut dep),
            Cell::Carry4 { cin, s, di, .. } => {
                dep(*cin);
                s.iter().copied().for_each(&mut dep);
                di.iter().copied().for_each(&mut dep);
            }
        }
    }
    let mut heap: BinaryHeap<std::cmp::Reverse<usize>> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| std::cmp::Reverse(i))
        .collect();
    let mut order = Vec::with_capacity(cells.len());
    while let Some(std::cmp::Reverse(i)) = heap.pop() {
        order.push(i);
        for &j in &edges[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                heap.push(std::cmp::Reverse(j));
            }
        }
    }
    if order.len() != cells.len() {
        let stuck: Vec<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(i, _)| i)
            .collect();
        return Err(NetioError::CombLoop { cells: stuck });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::export::to_verilog;
    use axmul_fabric::NetlistBuilder;

    fn adder() -> Netlist {
        let mut b = NetlistBuilder::new("adder-4!");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let mut props = Vec::new();
        for i in 0..4 {
            let (o6, _) = b.lut2(Init::XOR2, a[i], c[i]);
            props.push(o6);
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry_chain(zero, &props, &a);
        b.output_bus("s", &sums);
        b.output("cout", cout);
        b.finish().unwrap()
    }

    #[test]
    fn adder_round_trips_to_fixpoint() {
        let nl = adder();
        let v1 = to_verilog(&nl);
        let back = from_verilog(&v1).unwrap();
        assert_eq!(back.name(), "adder-4!", "provenance comment restores name");
        let v2 = to_verilog(&back);
        assert_eq!(v1, v2, "export → import → export must be a fixpoint");
        // And semantics: identical truth table over all 256 pairs.
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(
                    nl.eval(&[a, b]).unwrap(),
                    back.eval(&[a, b]).unwrap(),
                    "({a},{b})"
                );
            }
        }
    }

    #[test]
    fn foreign_wire_names_still_import() {
        let src = "module m (\n  input  wire x,\n  output wire y\n);\n  wire t0;\n  \
                   LUT6_2 #(.INIT(64'h0000000000000002)) u1 (.I0(x), .I1(1'b0), .I2(1'b0), \
                   .I3(1'b0), .I4(1'b0), .I5(1'b0), .O6(t0));\n  assign y = t0;\nendmodule\n";
        let nl = from_verilog(src).unwrap();
        assert_eq!(nl.lut_count(), 1);
        // x=1, others 0 → truth-table index 1 → bit 1 of INIT 0x2 → 1.
        assert_eq!(nl.eval(&[1]).unwrap(), vec![1]);
    }

    #[test]
    fn out_of_order_cells_are_stably_sorted() {
        // u2 consumes t0 which u1 (textually later) produces.
        let src = "module m (\n  input  wire x,\n  output wire y\n);\n  wire t0;\n  wire t1;\n  \
                   LUT6_2 #(.INIT(64'h0000000000000002)) u2 (.I0(t0), .I1(1'b0), .I2(1'b0), \
                   .I3(1'b0), .I4(1'b0), .I5(1'b0), .O6(t1));\n  \
                   LUT6_2 #(.INIT(64'h0000000000000002)) u1 (.I0(x), .I1(1'b0), .I2(1'b0), \
                   .I3(1'b0), .I4(1'b0), .I5(1'b0), .O6(t0));\n  assign y = t1;\nendmodule\n";
        let nl = from_verilog(src).unwrap();
        assert_eq!(nl.eval(&[1]).unwrap(), vec![1]);
    }

    #[test]
    fn typed_errors_carry_locations() {
        let cases: &[(&str, &str)] = &[
            ("module m (\n  input wire a\n);\n  FDRE r (.D(a));\nendmodule\n", "unknown-primitive"),
            (
                "module m (\n  input wire a,\n  output wire y\n);\n  assign y = b;\nendmodule\n",
                "unknown-net",
            ),
            (
                "module m (\n  input wire a,\n  output wire y\n);\n  wire t;\n  assign y = a;\nendmodule\n",
                "undriven-net",
            ),
            (
                "module m (\n  input wire a,\n  output wire y\n);\n  assign y = a;\n  assign y = a;\nendmodule\n",
                "duplicate-driver",
            ),
            (
                "module m (\n  input wire [3:0] a,\n  output wire y\n);\n  assign y = a;\nendmodule\n",
                "width-mismatch",
            ),
            (
                "module m (\n  input wire a,\n  output wire y\n);\n  LUT6_2 l (.I0(a), .I1(a), \
                 .I2(a), .I3(a), .I4(a), .I5(a), .O6(y));\nendmodule\n",
                "bad-init",
            ),
            ("module m (", "syntax"),
        ];
        for (src, code) in cases {
            let err = from_verilog(src).unwrap_err();
            assert_eq!(err.code(), *code, "{src:?} → {err}");
        }
    }

    #[test]
    fn combinational_loops_are_detected() {
        let src = "module m (\n  input  wire x,\n  output wire y\n);\n  wire t0;\n  wire t1;\n  \
                   LUT6_2 #(.INIT(64'h0000000000000002)) u0 (.I0(t1), .I1(1'b0), .I2(1'b0), \
                   .I3(1'b0), .I4(1'b0), .I5(1'b0), .O6(t0));\n  \
                   LUT6_2 #(.INIT(64'h0000000000000002)) u1 (.I0(t0), .I1(1'b0), .I2(1'b0), \
                   .I3(1'b0), .I4(1'b0), .I5(1'b0), .O6(t1));\n  assign y = t0;\nendmodule\n";
        assert!(matches!(
            from_verilog(src).unwrap_err(),
            NetioError::CombLoop { .. }
        ));
    }
}
