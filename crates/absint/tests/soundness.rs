//! The soundness harness: randomized ground-truth containment.
//!
//! Every claim the abstract interpreter makes is checked against
//! bit-exact simulation of the very designs it analyzed:
//!
//! * random configuration trees at 4×4 and 8×8 are swept
//!   *exhaustively* — every deviation must lie in the static error
//!   interval, every output in the value interval, the true worst-case
//!   error inside `[wce_lb, wce_ub]`, every pointwise relative error
//!   under `mre`, and the recorded witness must achieve `wce_lb`;
//! * 16×16 trees are checked on seeded random vectors (2³² pairs are
//!   out of reach) — upper bounds and the witness remain checkable;
//! * random stuck-at faults are injected into netlists and the faulted
//!   known-bits analysis must still contain the faulted simulation.

use axmul_absint::analyze_netlist_with_faults;
use axmul_core::behavioral::Summation;
use axmul_core::Multiplier;
use axmul_dse::{static_bounds, CharCache, Config, Leaf};
use axmul_fabric::compile::CompiledNetlist;
use axmul_fabric::cost::Characterizer;
use axmul_fabric::fault::Fault;
use axmul_fabric::{NetId, Netlist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sweeps one operand pair through every containment claim of a tree
/// analysis. Returns the deviation magnitude for worst-case tracking.
fn check_pair(bound: &axmul_absint::ErrorBound, m: &impl Multiplier, a: u64, b: u64) -> u128 {
    let out = m.multiply(a, b);
    let exact = i128::from(a) * i128::from(b);
    let dev = i128::from(out) - exact;
    assert!(
        bound.err_lo <= dev && dev <= bound.err_hi,
        "{}: deviation {dev} at ({a}, {b}) escapes [{}, {}]",
        m.name(),
        bound.err_lo,
        bound.err_hi,
    );
    assert!(
        bound.value.contains(u128::from(out)),
        "{}: output {out} at ({a}, {b}) escapes {}",
        m.name(),
        bound.value,
    );
    if exact > 0 {
        let rel = dev.unsigned_abs() as f64 / exact as f64;
        assert!(
            rel <= bound.mre * (1.0 + 1e-9),
            "{}: relative error {rel} at ({a}, {b}) exceeds mre {}",
            m.name(),
            bound.mre,
        );
    }
    if bound.no_error_at_zero && (a == 0 || b == 0) {
        assert_eq!(dev, 0, "{}: error at a zero operand ({a}, {b})", m.name());
    }
    dev.unsigned_abs()
}

/// Checks the recorded witness achieves the claimed lower bound and
/// the certificate replays.
fn check_witness_and_cert(analysis: &axmul_absint::TreeAnalysis, m: &impl Multiplier) {
    analysis.certificate.verify().expect("certificate replays");
    match analysis.bound.witness {
        Some((wa, wb)) => {
            let dev =
                (i128::from(m.multiply(wa, wb)) - i128::from(wa) * i128::from(wb)).unsigned_abs();
            assert!(
                dev >= analysis.bound.wce_lb,
                "{}: witness ({wa}, {wb}) achieves {dev} < claimed lower bound {}",
                analysis.key,
                analysis.bound.wce_lb,
            );
        }
        None => assert_eq!(analysis.bound.wce_lb, 0),
    }
}

/// Exhaustive soundness check of one configuration tree (widths ≤ 8).
fn assert_tree_sound_exhaustive(cache: &CharCache, cfg: &Config) {
    let block = cache.characterize(cfg).expect("config simulates");
    let m = block.multiplier();
    let analysis = static_bounds(cfg).expect("width fits the interpreter");
    let bits = cfg.bits();
    let mut max_dev: u128 = 0;
    for a in 0..1u64 << bits {
        for b in 0..1u64 << bits {
            max_dev = max_dev.max(check_pair(&analysis.bound, &m, a, b));
        }
    }
    assert!(
        analysis.bound.wce_lb <= max_dev && max_dev <= analysis.bound.wce_ub(),
        "{}: true WCE {max_dev} escapes [{}, {}]",
        analysis.key,
        analysis.bound.wce_lb,
        analysis.bound.wce_ub(),
    );
    check_witness_and_cert(&analysis, &m);
}

/// Sampled soundness check for widths whose operand space cannot be
/// enumerated (16×16): pointwise containment plus the witness.
fn assert_tree_sound_sampled(cache: &CharCache, cfg: &Config, samples: u64, seed: u64) {
    let block = cache.characterize(cfg).expect("config simulates");
    let m = block.multiplier();
    let analysis = static_bounds(cfg).expect("width fits the interpreter");
    let mask = (1u64 << cfg.bits()) - 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut max_dev: u128 = 0;
    for _ in 0..samples {
        let a = rng.random::<u64>() & mask;
        let b = rng.random::<u64>() & mask;
        max_dev = max_dev.max(check_pair(&analysis.bound, &m, a, b));
    }
    assert!(
        max_dev <= analysis.bound.wce_ub(),
        "{}: sampled WCE {max_dev} exceeds upper bound {}",
        analysis.key,
        analysis.bound.wce_ub(),
    );
    check_witness_and_cert(&analysis, &m);
}

/// Sweeps every operand pair of a faulted netlist and asserts the
/// faulted static analysis contains the observed outputs.
fn assert_faulted_netlist_contained(nl: &Netlist, faults: &[Fault]) {
    let analysis = analyze_netlist_with_faults(nl, faults);
    let bits = nl.input_bits();
    let prog = CompiledNetlist::compile_with_faults(nl, faults);
    prog.for_each_operand_pair_in(0..1u64 << bits, |a, b, out| {
        for (range, &o) in analysis.outputs.iter().zip(out) {
            assert!(
                range.interval.contains(u128::from(o)),
                "{} under {faults:?}: bus {} value {o} at ({a}, {b}) escapes {}",
                nl.name(),
                range.bus,
                range.interval,
            );
        }
    })
    .expect("two-bus netlist");
}

#[test]
fn all_4x4_leaves_are_exhaustively_sound() {
    let cache = CharCache::new(Characterizer::virtex7());
    for leaf in Leaf::ALL {
        assert_tree_sound_exhaustive(&cache, &Config::Leaf(leaf));
    }
}

#[test]
fn homogeneous_8x8_quads_are_exhaustively_sound() {
    let cache = CharCache::new(Characterizer::virtex7());
    for summation in [Summation::Accurate, Summation::CarryFree] {
        for leaf in Leaf::ALL {
            let cfg = Config::uniform(Config::Leaf(leaf), summation);
            assert_tree_sound_exhaustive(&cache, &cfg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random heterogeneous 8×8 trees: the full 65 536-pair sweep
    /// stays inside the static bounds.
    #[test]
    fn random_8x8_trees_are_exhaustively_sound(seed in 0u64..1 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Config::random(8, &mut rng);
        let cache = CharCache::new(Characterizer::virtex7());
        assert_tree_sound_exhaustive(&cache, &cfg);
    }

    /// Random stuck-at faults in random 8×8 netlists: the faulted
    /// known-bits pass still brackets the faulted simulation.
    #[test]
    fn random_faults_in_8x8_netlists_are_contained(seed in 0u64..1 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Config::random(8, &mut rng);
        let nl = cfg.assemble();
        let n_faults = rng.random_range(1..=3usize);
        let faults: Vec<Fault> = (0..n_faults)
            .map(|_| Fault {
                net: NetId::new(rng.random_range(0..nl.net_count() as u32)),
                stuck_at: rng.random::<bool>(),
            })
            .collect();
        assert_faulted_netlist_contained(&nl, &faults);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random 16×16 trees on seeded vectors: sampled deviations stay
    /// inside the static interval and under the upper bound.
    #[test]
    fn random_16x16_trees_are_sound_on_sampled_vectors(seed in 0u64..1 << 48) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = Config::random(16, &mut rng);
        let cache = CharCache::new(Characterizer::virtex7());
        assert_tree_sound_sampled(&cache, &cfg, 4096, seed ^ 0xA51);
    }
}

/// Every single stuck-at fault of every 4×4 leaf kernel, swept over
/// all 256 operand pairs: a complete (not sampled) containment proof
/// at leaf scale.
#[test]
fn every_single_fault_in_every_leaf_is_contained() {
    for leaf in Leaf::ALL {
        let nl = Config::Leaf(leaf).assemble();
        for net in 0..nl.net_count() as u32 {
            for stuck_at in [false, true] {
                let fault = Fault {
                    net: NetId::new(net),
                    stuck_at,
                };
                assert_faulted_netlist_contained(&nl, &[fault]);
            }
        }
    }
}
