//! Error-interval analysis of recursive multiplier configuration
//! trees.
//!
//! An [`AbsTree`] mirrors the DSE configuration grammar (`X`, `A`,
//! `T1`–`T3` leaves; accurate / carry-free quads) without depending on
//! the `axmul-dse` crate — dse converts its `Config` into an
//! `AbsTree` and calls [`analyze_tree`]. The analysis is purely
//! structural: leaf bounds are seeded from the paper's exact error
//! tables and closed forms (no simulation), then composed bottom-up
//! through the two summation schemes with interval arithmetic.
//!
//! # Leaf seeds
//!
//! Writing `e(a, b) = approx(a, b) − exact(a, b)`:
//!
//! * `X` (exact 4×4): `e ≡ 0`.
//! * `A` (the paper's approximate 4×4): Table 2 of the paper lists the
//!   complete error set — six operand pairs, each with `e = −8`, the
//!   smallest erring product being `7·6 = 42`. Hence `e ∈ [−8, 0]`,
//!   `|e| = 8` achieved at `(a, b) = (7, 6)`, and pointwise
//!   `|e| ≤ (8/42)·exact`.
//! * `T(k)` (partial-product truncation): the kernel drops every
//!   partial-product bit `a_i·b_j` with `i + j < k`, so
//!   `e = −Σ_{i+j<k} a_i·b_j·2^{i+j} ∈ [−D_k, 0]` with
//!   `D_1, D_2, D_3 = 1, 5, 17`, achieved at `(15, 15)` where every
//!   dropped bit is 1. The drop is a sub-sum of the product itself, so
//!   pointwise `|e| ≤ 1.0·exact`.
//!
//! # Composition
//!
//! A quad node splits `a = a_H·2^m + a_L`, `b = b_H·2^m + b_L` and
//! combines quadrant outputs `ll, hl, lh, hh`:
//!
//! * **Accurate**: `A = ll + (hl + lh)·2^m + hh·2^2m`. Errors add with
//!   the same weights, so the error interval is the weighted interval
//!   sum.
//! * **Carry-free**: the middle columns are XOR-ed instead of added
//!   (`C = (ll & lo) + [((ll≫m) ⊕ hl ⊕ lh ⊕ ((hh & lo)≪m)) &
//!   lo2m]·2^m + (hh≫m)·2^3m`), which only *discards* carries: with
//!   `T = (ll≫m) + hl + lh + (hh & lo)·2^m` and `X` its XOR,
//!   `C − A = (X − T)·2^m ≤ 0`. Per column at most 3 of the four terms
//!   contribute a bit, so each column drops at most 2 and
//!   `T − X ≤ min(2·(2^{2m} − 1), max T)` — the carry-free
//!   deviation bound added below the accurate interval.
//!
//! Achievable lower bounds lift through both schemes (see
//! [`compose`]), so every tree bound comes with an operand witness
//! bracketing the true worst-case error from below.

use axmul_core::behavioral::Summation;

use crate::cert::{CertStep, Certificate, Rule};
use crate::domain::{ErrorBound, Interval};
use crate::AbsintError;

/// Operand width of the 4×4 leaf kernels.
pub const LEAF_BITS: u32 = 4;

/// Widest operand the tree analysis accepts (per side). The engine
/// does all arithmetic in `u128`/`i128`; 32-bit operands keep every
/// intermediate (values `< 2^64`, shifted quadrant terms `< 2^96`)
/// comfortably in range.
pub const MAX_ABSINT_BITS: u32 = 32;

/// The 4×4 kernel choices, mirroring the DSE `Leaf` grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LeafKind {
    /// Exact 4×4 multiplier.
    Exact,
    /// The paper's approximate 4×4 multiplier.
    Approx4x4,
    /// Partial-product truncation of depth `k` (`1 ≤ k ≤ 3`).
    PpTruncated(u32),
}

impl LeafKind {
    /// Canonical single-token code: `X`, `A`, `T1`–`T3`.
    #[must_use]
    pub fn code(self) -> String {
        match self {
            LeafKind::Exact => "X".to_string(),
            LeafKind::Approx4x4 => "A".to_string(),
            LeafKind::PpTruncated(k) => format!("T{k}"),
        }
    }
}

/// A configuration tree in the shape the analysis consumes: leaves at
/// 4×4, quads doubling the width (`LL`, `HL`, `LH`, `HH` order).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AbsTree {
    /// A 4×4 kernel.
    Leaf(LeafKind),
    /// A `2M×2M` node over four `M×M` subtrees.
    Quad {
        /// Quadrant summation scheme.
        summation: Summation,
        /// Subtrees in `LL`, `HL`, `LH`, `HH` order.
        sub: Box<[AbsTree; 4]>,
    },
}

impl AbsTree {
    /// Operand width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        match self {
            AbsTree::Leaf(_) => LEAF_BITS,
            AbsTree::Quad { sub, .. } => 2 * sub[0].bits(),
        }
    }

    /// Canonical key, identical to the DSE `Config::key` grammar.
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            AbsTree::Leaf(l) => l.code(),
            AbsTree::Quad { summation, sub } => {
                let tag = match summation {
                    Summation::Accurate => 'a',
                    Summation::CarryFree => 'c',
                };
                format!(
                    "({tag} {} {} {} {})",
                    sub[0].key(),
                    sub[1].key(),
                    sub[2].key(),
                    sub[3].key()
                )
            }
        }
    }
}

/// The result of analyzing one configuration tree.
#[derive(Debug, Clone)]
pub struct TreeAnalysis {
    /// Canonical key of the analyzed tree.
    pub key: String,
    /// Operand width in bits.
    pub bits: u32,
    /// The root error bound.
    pub bound: ErrorBound,
    /// Machine-checkable derivation of [`TreeAnalysis::bound`].
    pub certificate: Certificate,
}

impl TreeAnalysis {
    /// Compact JSON rendering of the headline numbers (hand-rolled —
    /// the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let b = &self.bound;
        format!(
            concat!(
                "{{\"key\":\"{}\",\"bits\":{},\"wce_lb\":{},\"wce_ub\":{},",
                "\"err_lo\":{},\"err_hi\":{},\"mre_ub\":{},",
                "\"value_lo\":{},\"value_hi\":{},\"witness\":{},",
                "\"cert_steps\":{},\"sound\":{}}}"
            ),
            self.key,
            self.bits,
            b.wce_lb,
            b.wce_ub(),
            b.err_lo,
            b.err_hi,
            b.mre,
            b.value.lo,
            b.value.hi,
            b.witness
                .map_or("null".to_string(), |(a, bb)| format!("[{a},{bb}]")),
            self.certificate.steps().len(),
            self.certificate.verify().is_ok(),
        )
    }
}

/// The seed [`ErrorBound`] of one leaf kernel (see the module docs for
/// the derivation of each entry).
///
/// # Panics
///
/// Panics on `PpTruncated(k)` with `k` outside `1..=3`.
#[must_use]
pub fn leaf_seed(kind: LeafKind) -> ErrorBound {
    // All 4×4 kernels output at most 15·15 = 225 and at least 0.
    let value = Interval::new(0, 225);
    match kind {
        LeafKind::Exact => ErrorBound {
            err_lo: 0,
            err_hi: 0,
            wce_lb: 0,
            witness: Some((0, 0)),
            mre: 0.0,
            value,
            no_error_at_zero: true,
        },
        LeafKind::Approx4x4 => ErrorBound {
            err_lo: -8,
            err_hi: 0,
            wce_lb: 8,
            witness: Some((7, 6)),
            mre: 8.0 / 42.0,
            value,
            no_error_at_zero: true,
        },
        LeafKind::PpTruncated(k) => {
            assert!((1..=3).contains(&k), "truncation depth {k} out of range");
            // Σ_{i+j<k} 2^{i+j} over the 4×4 partial-product grid.
            let d = [1i128, 5, 17][(k - 1) as usize];
            ErrorBound {
                err_lo: -d,
                err_hi: 0,
                wce_lb: d as u128,
                witness: Some((15, 15)),
                mre: 1.0,
                value,
                no_error_at_zero: true,
            }
        }
    }
}

fn mask(bits: u32) -> u128 {
    (1u128 << bits) - 1
}

/// Composes four quadrant bounds (`LL`, `HL`, `LH`, `HH`, each for an
/// `m×m` block) into the bound of the `2m×2m` parent.
///
/// Witness invariant: a child witness `(a, b)` is assumed to achieve
/// an error `e ≤ 0` with `|e| ≥ wce_lb` (true of every bound this
/// crate derives, and preserved by weakening) — the lifted parent
/// witness then satisfies the same invariant:
///
/// * **Single-quadrant lift** (both schemes): take the quadrant `Q`
///   maximizing `wce_lb_Q · 2^{shift_Q}` and zero the operand halves
///   the other quadrants consume. If those three siblings are
///   error-free at zero, they output exactly 0, every carry-free
///   column holds at most one nonzero term (so no carry is dropped),
///   and the parent error equals `Q`'s error times its weight.
/// * **Combined lift** (accurate only): when the four child witnesses
///   agree on the operand halves they share (`LL`/`LH` on `a_L`,
///   `LL`/`HL` on `b_L`, `HL`/`HH` on `a_H`, `LH`/`HH` on `b_H`) and
///   every child error is non-positive, the quadrant errors add with
///   their weights under the combined operands — e.g. all-`A` trees
///   get `wce_lb = wce_ub` (the bound is exact).
#[must_use]
pub fn compose(summation: Summation, m: u32, children: &[ErrorBound; 4]) -> ErrorBound {
    let [ll, hl, lh, hh] = children;
    let shifts = [0, m, m, 2 * m];

    // Accurate interval composition — also the backbone of the
    // carry-free case (which only subtracts further).
    let acc_err_lo = ll.err_lo + ((hl.err_lo + lh.err_lo) << m) + (hh.err_lo << (2 * m));
    let acc_err_hi = ll.err_hi + ((hl.err_hi + lh.err_hi) << m) + (hh.err_hi << (2 * m));
    let acc_value = ll
        .value
        .add(&hl.value.add(&lh.value).shl(m))
        .add(&hh.value.shl(2 * m));

    let all_nonpos = children.iter().all(|c| c.err_hi <= 0);
    let noz = children.iter().all(|c| c.no_error_at_zero);
    let max_mre = children.iter().map(|c| c.mre).fold(0.0f64, f64::max);

    // Single-quadrant achievable lift: quadrant q's witness with the
    // other operand halves zeroed. Sound only when the three siblings
    // are error-free at zero.
    let single = (0..4)
        .filter(|&q| {
            children[q].witness.is_some() && (0..4).all(|o| o == q || children[o].no_error_at_zero)
        })
        .map(|q| {
            let (wa, wb) = children[q].witness.expect("filtered on witness presence");
            let lifted = match q {
                0 => (wa, wb),
                1 => (wa << m, wb),
                2 => (wa, wb << m),
                _ => (wa << m, wb << m),
            };
            (children[q].wce_lb << shifts[q], lifted)
        })
        .max_by_key(|(lb, _)| *lb);

    match summation {
        Summation::Accurate => {
            // Combined lift when the witnesses agree on shared halves.
            let combined = match (ll.witness, hl.witness, lh.witness, hh.witness) {
                (Some(wll), Some(whl), Some(wlh), Some(whh))
                    if all_nonpos
                        && wll.0 == wlh.0
                        && wll.1 == whl.1
                        && whl.0 == whh.0
                        && wlh.1 == whh.1 =>
                {
                    let lb = children
                        .iter()
                        .zip(shifts)
                        .map(|(c, s)| c.wce_lb << s)
                        .sum::<u128>();
                    Some((lb, (wll.0 | (whl.0 << m), wll.1 | (wlh.1 << m))))
                }
                _ => None,
            };
            let (wce_lb, witness) =
                match combined.into_iter().chain(single).max_by_key(|(lb, _)| *lb) {
                    Some((lb, w)) => (lb, Some(w)),
                    None => (0, None),
                };
            ErrorBound {
                err_lo: acc_err_lo,
                err_hi: acc_err_hi,
                wce_lb,
                witness,
                mre: max_mre,
                value: acc_value,
                no_error_at_zero: noz,
            }
        }
        Summation::CarryFree => {
            // Bound on the dropped middle-column carries T − X (see the
            // module docs), then shifted into place by 2^m.
            let t_hi =
                (ll.value.hi >> m) + hl.value.hi + lh.value.hi + (hh.value.hi.min(mask(m)) << m);
            let drop_hi = (2 * (mask(2 * m))).min(t_hi) << m;
            let value_hi = acc_value.hi.min(
                ll.value.hi.min(mask(m)) + (mask(2 * m) << m) + ((hh.value.hi >> m) << (3 * m)),
            );
            let value_lo =
                ((hh.value.lo >> m) << (3 * m)).max(acc_value.lo.saturating_sub(drop_hi));
            let (wce_lb, witness) = match single {
                Some((lb, w)) => (lb, Some(w)),
                None => (0, None),
            };
            ErrorBound {
                err_lo: acc_err_lo - drop_hi as i128,
                err_hi: acc_err_hi,
                wce_lb,
                witness,
                // The dropped carries are at most the accurate sum A
                // itself; when every child under-estimates, A ≤ exact,
                // giving |e| ≤ (max_mre + 1)·exact pointwise. Otherwise
                // A ≤ (1 + max_mre)·exact still bounds the drop.
                mre: if all_nonpos {
                    max_mre + 1.0
                } else {
                    2.0 * max_mre + 1.0
                },
                value: Interval::new(value_lo, value_hi),
                no_error_at_zero: noz,
            }
        }
    }
}

/// Runs the abstract interpretation over a configuration tree,
/// producing the root [`ErrorBound`] and a step-by-step
/// [`Certificate`] of its derivation.
///
/// # Errors
///
/// Returns [`AbsintError::WidthTooLarge`] when the tree's operand
/// width exceeds [`MAX_ABSINT_BITS`].
pub fn analyze_tree(tree: &AbsTree) -> Result<TreeAnalysis, AbsintError> {
    let bits = tree.bits();
    if bits > MAX_ABSINT_BITS {
        return Err(AbsintError::WidthTooLarge {
            bits,
            max: MAX_ABSINT_BITS,
        });
    }
    let mut steps: Vec<CertStep> = Vec::new();
    let root = walk(tree, &mut steps);
    let bound = steps[root].bound.clone();
    Ok(TreeAnalysis {
        key: tree.key(),
        bits,
        bound,
        certificate: Certificate::new(steps),
    })
}

/// Post-order walk appending one certificate step per node; returns
/// the index of the node's step.
fn walk(tree: &AbsTree, steps: &mut Vec<CertStep>) -> usize {
    match tree {
        AbsTree::Leaf(kind) => {
            steps.push(CertStep {
                key: tree.key(),
                rule: Rule::Seed(*kind),
                bound: leaf_seed(*kind),
            });
            steps.len() - 1
        }
        AbsTree::Quad { summation, sub } => {
            let children = [
                walk(&sub[0], steps),
                walk(&sub[1], steps),
                walk(&sub[2], steps),
                walk(&sub[3], steps),
            ];
            let m = sub[0].bits();
            let bounds = [
                steps[children[0]].bound.clone(),
                steps[children[1]].bound.clone(),
                steps[children[2]].bound.clone(),
                steps[children[3]].bound.clone(),
            ];
            steps.push(CertStep {
                key: tree.key(),
                rule: Rule::Compose {
                    summation: *summation,
                    m,
                    children,
                },
                bound: compose(*summation, m, &bounds),
            });
            steps.len() - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(kind: LeafKind, bits: u32, summation: Summation) -> AbsTree {
        if bits == LEAF_BITS {
            AbsTree::Leaf(kind)
        } else {
            let sub = uniform(kind, bits / 2, summation);
            AbsTree::Quad {
                summation,
                sub: Box::new([sub.clone(), sub.clone(), sub.clone(), sub]),
            }
        }
    }

    #[test]
    fn keys_match_the_dse_grammar() {
        assert_eq!(
            uniform(LeafKind::Approx4x4, 8, Summation::Accurate).key(),
            "(a A A A A)"
        );
        assert_eq!(
            uniform(LeafKind::PpTruncated(2), 8, Summation::CarryFree).key(),
            "(c T2 T2 T2 T2)"
        );
    }

    #[test]
    fn exact_trees_have_zero_error() {
        for summation in [Summation::Accurate, Summation::CarryFree] {
            for bits in [4, 8, 16, 32] {
                let t = uniform(LeafKind::Exact, bits, summation);
                let a = analyze_tree(&t).unwrap();
                assert_eq!(a.bound.err_hi, 0);
                if summation == Summation::Accurate {
                    assert_eq!(a.bound.err_lo, 0, "{}", a.key);
                    let top = mask(bits);
                    assert!(a.bound.value.contains(top * top));
                }
                a.certificate.verify().unwrap();
            }
        }
    }

    #[test]
    fn carry_free_exact_tree_still_drops_carries() {
        // (c X X X X) is NOT error-free: the XOR combine discards real
        // carries of the exact quadrant products.
        let t = uniform(LeafKind::Exact, 8, Summation::CarryFree);
        let a = analyze_tree(&t).unwrap();
        assert!(a.bound.err_lo < 0);
        assert_eq!(a.bound.err_hi, 0);
    }

    #[test]
    fn paper_ca_8x8_bound_is_exact() {
        // Known ground truth of the all-approximate accurate design:
        // max error 8 + (8 + 8)·16 + 8·256 = 2312, at a=0x77, b=0x66.
        let t = uniform(LeafKind::Approx4x4, 8, Summation::Accurate);
        let a = analyze_tree(&t).unwrap();
        assert_eq!(a.bound.wce_ub(), 2312);
        assert_eq!(a.bound.wce_lb, 2312);
        assert_eq!(a.bound.witness, Some((0x77, 0x66)));
        assert!((a.bound.mre - 8.0 / 42.0).abs() < 1e-12);
        a.certificate.verify().unwrap();
    }

    #[test]
    fn paper_cc_8x8_bound_brackets_the_truth() {
        let t = uniform(LeafKind::Approx4x4, 8, Summation::CarryFree);
        let a = analyze_tree(&t).unwrap();
        // The HH quadrant alone achieves 8·256 = 2048 with the other
        // quadrants zeroed (no carries to drop).
        assert_eq!(a.bound.wce_lb, 2048);
        assert_eq!(a.bound.witness, Some((7 << 4, 6 << 4)));
        assert!(a.bound.wce_ub() >= 2312);
        a.certificate.verify().unwrap();
    }

    #[test]
    fn truncated_leaf_seed_magnitudes() {
        assert_eq!(leaf_seed(LeafKind::PpTruncated(1)).wce_lb, 1);
        assert_eq!(leaf_seed(LeafKind::PpTruncated(2)).wce_lb, 5);
        assert_eq!(leaf_seed(LeafKind::PpTruncated(3)).wce_lb, 17);
    }

    #[test]
    fn witness_brackets_scale_to_32_bits() {
        let t = uniform(LeafKind::Approx4x4, 32, Summation::Accurate);
        let a = analyze_tree(&t).unwrap();
        assert_eq!(a.bound.wce_lb, a.bound.wce_ub());
        let (wa, wb) = a.bound.witness.unwrap();
        assert_eq!(wa, 0x7777_7777);
        assert_eq!(wb, 0x6666_6666);
        a.certificate.verify().unwrap();
    }

    #[test]
    fn width_cap_is_enforced() {
        let t = uniform(LeafKind::Exact, 64, Summation::Accurate);
        assert!(matches!(
            analyze_tree(&t),
            Err(AbsintError::WidthTooLarge { bits: 64, .. })
        ));
    }

    #[test]
    fn mixed_tree_err_interval_adds_weighted() {
        // (a X A X T2): only HL (weight 2^4) and HH (weight 2^8) err.
        let t = AbsTree::Quad {
            summation: Summation::Accurate,
            sub: Box::new([
                AbsTree::Leaf(LeafKind::Exact),
                AbsTree::Leaf(LeafKind::Approx4x4),
                AbsTree::Leaf(LeafKind::Exact),
                AbsTree::Leaf(LeafKind::PpTruncated(2)),
            ]),
        };
        let a = analyze_tree(&t).unwrap();
        assert_eq!(a.bound.err_lo, -(8 * 16 + 5 * 256));
        assert_eq!(a.bound.err_hi, 0);
        // Combined witness: X witnesses are (0,0) and share halves
        // only if consistent — (0,0)/(7,6)/(0,0)/(15,15) do not agree,
        // so the single-quadrant HH lift wins: 5·256.
        assert_eq!(a.bound.wce_lb, 5 * 256);
        a.certificate.verify().unwrap();
    }

    #[test]
    fn json_mentions_soundness_and_witness() {
        let t = uniform(LeafKind::Approx4x4, 8, Summation::Accurate);
        let a = analyze_tree(&t).unwrap();
        let j = a.to_json();
        assert!(j.contains("\"sound\":true"), "{j}");
        assert!(j.contains("\"wce_ub\":2312"), "{j}");
        assert!(j.contains("\"witness\":[119,102]"), "{j}");
    }
}
