//! Known-bits propagation over an elaborated netlist.
//!
//! One forward pass in topological order assigns each net a
//! [`KnownBit`]: `0`, `1`, or `⊤`. The LUT transfer function
//! enumerates the *distinct* unknown input nets of a cell (so a net
//! wired to several pins is assigned consistently, not independently —
//! e.g. `O6 = I0 XOR I0` is proven constant 0 even when the net is
//! unknown), and the `CARRY4` transfer mirrors the simulator's
//! per-stage `O[i] = S[i] XOR C[i]`, `C[i+1] = S[i] ? C[i] : DI[i]`
//! semantics in three-valued logic, including the `C == DI` shortcut
//! where the mux result is known although its select is not.
//!
//! Stuck-at faults are modeled exactly as
//! [`axmul_fabric::fault::eval_with_faults`] applies them: a faulted
//! net reads its stuck value everywhere it is consumed, while the
//! carry cascade *inside* one `CARRY4` keeps the internally computed
//! carry.

use axmul_fabric::fault::Fault;
use axmul_fabric::{Cell, Driver, Init, NetId, Netlist};

use crate::domain::{Interval, KnownBit};

/// The known-bits abstract state of every net in a netlist.
#[derive(Debug, Clone)]
pub struct KnownBits {
    vals: Vec<KnownBit>,
}

impl KnownBits {
    /// Runs the propagation on a fault-free netlist.
    #[must_use]
    pub fn analyze(netlist: &Netlist) -> Self {
        Self::analyze_with_faults(netlist, &[])
    }

    /// Runs the propagation with the given stuck-at faults injected.
    #[must_use]
    pub fn analyze_with_faults(netlist: &Netlist, faults: &[Fault]) -> Self {
        let n = netlist.net_count();
        let mut forced: Vec<Option<bool>> = vec![None; n];
        for f in faults {
            forced[f.net.index()] = Some(f.stuck_at);
        }
        let mut vals = vec![KnownBit::Top; n];
        for (i, d) in netlist.drivers().iter().enumerate() {
            if let Driver::Const(c) = d {
                vals[i] = KnownBit::from_bool(*c);
            }
        }
        for (i, f) in forced.iter().enumerate() {
            if let Some(b) = f {
                vals[i] = KnownBit::from_bool(*b);
            }
        }
        let set = |vals: &mut [KnownBit], net: NetId, v: KnownBit| {
            // A forced net keeps its stuck value regardless of what the
            // driving cell computes.
            if forced[net.index()].is_none() {
                vals[net.index()] = v;
            }
        };
        for cell in netlist.cells() {
            match cell {
                Cell::Lut {
                    init,
                    inputs: pins,
                    o6,
                    o5,
                } => {
                    let (k6, k5) = lut_transfer(*init, pins, &vals);
                    set(&mut vals, *o6, k6);
                    if let Some(o5) = o5 {
                        set(&mut vals, *o5, k5);
                    }
                }
                Cell::Carry4 { cin, s, di, o, co } => {
                    let mut carry = vals[cin.index()];
                    for stage in 0..4 {
                        let sv = vals[s[stage].index()];
                        let dv = vals[di[stage].index()];
                        if let Some(net) = o[stage] {
                            set(&mut vals, net, sv.xor(carry));
                        }
                        carry = KnownBit::mux(sv, carry, dv);
                        if let Some(net) = co[stage] {
                            set(&mut vals, net, carry);
                        }
                    }
                }
            }
        }
        KnownBits { vals }
    }

    /// Abstract value of one net.
    #[must_use]
    pub fn get(&self, net: NetId) -> KnownBit {
        self.vals[net.index()]
    }

    /// Concrete value of the net, if proven constant.
    #[must_use]
    pub fn constant_of(&self, net: NetId) -> Option<bool> {
        self.get(net).as_const()
    }

    /// Value interval of a weighted bit group (LSB-first nets, bit `i`
    /// carrying weight `2^i`): known-one bits contribute to both
    /// bounds, unknown bits only to the upper bound.
    ///
    /// # Panics
    ///
    /// Panics if the group is wider than 128 bits.
    #[must_use]
    pub fn group_interval(&self, nets: &[NetId]) -> Interval {
        assert!(nets.len() <= 128, "bit group wider than 128 bits");
        let mut lo = 0u128;
        let mut hi = 0u128;
        for (bit, net) in nets.iter().enumerate() {
            let w = 1u128 << bit;
            match self.get(*net) {
                KnownBit::One => {
                    lo += w;
                    hi += w;
                }
                KnownBit::Top => hi += w,
                KnownBit::Zero => {}
            }
        }
        Interval::new(lo, hi)
    }

    /// Nets proven constant that are *driven by a cell output* —
    /// i.e. genuinely derived facts, excluding `Driver::Const` ties
    /// and primary inputs. Each entry is `(net, value)`.
    #[must_use]
    pub fn derived_constants(&self, netlist: &Netlist) -> Vec<(NetId, bool)> {
        netlist
            .drivers()
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                matches!(
                    d,
                    Driver::LutO6(_)
                        | Driver::LutO5(_)
                        | Driver::CarrySum(_, _)
                        | Driver::CarryCout(_, _)
                )
            })
            .filter_map(|(i, _)| {
                let net = NetId::new(i as u32);
                self.constant_of(net).map(|v| (net, v))
            })
            .collect()
    }
}

/// Three-valued LUT evaluation: enumerates every assignment of the
/// cell's distinct unknown input nets (at most `2^6`), and returns the
/// (`O6`, `O5`) abstractions — known iff the output agrees across all
/// assignments.
fn lut_transfer(init: Init, pins: &[NetId; 6], vals: &[KnownBit]) -> (KnownBit, KnownBit) {
    let mut base = 0u8;
    // Distinct unknown nets and the pin-position masks they drive.
    let mut unknown: Vec<(NetId, u8)> = Vec::new();
    for (k, net) in pins.iter().enumerate() {
        match vals[net.index()] {
            KnownBit::One => base |= 1 << k,
            KnownBit::Zero => {}
            KnownBit::Top => {
                if let Some(entry) = unknown.iter_mut().find(|(n, _)| n == net) {
                    entry.1 |= 1 << k;
                } else {
                    unknown.push((*net, 1 << k));
                }
            }
        }
    }
    let mut r6: Option<bool> = None;
    let mut r5: Option<bool> = None;
    let mut c6 = true;
    let mut c5 = true;
    for assign in 0u32..(1u32 << unknown.len()) {
        let mut idx = base;
        for (j, (_, mask)) in unknown.iter().enumerate() {
            if assign >> j & 1 == 1 {
                idx |= mask;
            }
        }
        let v6 = init.o6(idx);
        let v5 = init.o5(idx);
        match r6 {
            None => r6 = Some(v6),
            Some(prev) if prev != v6 => c6 = false,
            _ => {}
        }
        match r5 {
            None => r5 = Some(v5),
            Some(prev) if prev != v5 => c5 = false,
            _ => {}
        }
        if !c6 && !c5 {
            break;
        }
    }
    let lift = |consistent: bool, v: Option<bool>| {
        if consistent {
            v.map_or(KnownBit::Top, KnownBit::from_bool)
        } else {
            KnownBit::Top
        }
    };
    (lift(c6, r6), lift(c5, r5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::{FabricError, Init, NetlistBuilder};

    fn xor_self_netlist() -> Result<Netlist, FabricError> {
        let mut b = NetlistBuilder::new("xor-self");
        let a = b.inputs("a", 1);
        let (o6, _) = b.lut2(Init::XOR2, a[0], a[0]);
        b.output("y", o6);
        b.finish()
    }

    #[test]
    fn repeated_pin_net_is_assigned_consistently() {
        let n = xor_self_netlist().unwrap();
        let kb = KnownBits::analyze(&n);
        let y = n.output_buses()[0].1[0];
        assert_eq!(kb.get(y), KnownBit::Zero);
        // lut2 emits both O6 and O5; the XOR2 O5 half is constant too.
        assert!(kb.derived_constants(&n).contains(&(y, false)));
    }

    #[test]
    fn and_with_stuck_zero_input_is_constant() {
        let mut b = NetlistBuilder::new("and2");
        let a = b.inputs("a", 1);
        let c = b.inputs("b", 1);
        let (o6, _) = b.lut2(Init::AND2, a[0], c[0]);
        b.output("y", o6);
        let n = b.finish().unwrap();
        let y = n.output_buses()[0].1[0];

        let free = KnownBits::analyze(&n);
        assert_eq!(free.get(y), KnownBit::Top);

        let faulted = KnownBits::analyze_with_faults(&n, &[Fault::sa0(a[0])]);
        assert_eq!(faulted.get(y), KnownBit::Zero);
        // The fault also pins the input net itself.
        assert_eq!(faulted.constant_of(a[0]), Some(false));
    }

    #[test]
    fn fault_on_cell_output_overrides_computation() {
        let n = xor_self_netlist().unwrap();
        let y = n.output_buses()[0].1[0];
        // The LUT computes 0, but the stuck-at-1 fault wins.
        let kb = KnownBits::analyze_with_faults(&n, &[Fault::sa1(y)]);
        assert_eq!(kb.get(y), KnownBit::One);
    }

    #[test]
    fn group_interval_mixes_known_and_unknown_bits() {
        let mut b = NetlistBuilder::new("grp");
        let a = b.inputs("a", 2);
        let one = b.constant(true);
        let zero = b.constant(false);
        let n = {
            b.output("y0", one); // weight 1, known 1
            b.output("y1", a[0]); // weight 2, unknown
            b.output("y2", zero); // weight 4, known 0
            b.output("y3", a[1]); // weight 8, unknown
            b.finish().unwrap()
        };
        let kb = KnownBits::analyze(&n);
        let group: Vec<NetId> = n.output_buses().iter().map(|(_, bits)| bits[0]).collect();
        assert_eq!(kb.group_interval(&group), Interval::new(1, 11));
    }

    #[test]
    fn carry_chain_sum_of_constants_is_constant() {
        // 4-bit ripple add of two constant operands through CARRY4:
        // exercises the xor/mux transfer end to end.
        let mut b = NetlistBuilder::new("const-add");
        let a_bits = [true, false, true, false]; // a = 5
        let c_bits = [true, true, false, false]; // b = 3
        let mut props = Vec::new();
        let mut gens = Vec::new();
        for i in 0..4 {
            let an = b.constant(a_bits[i]);
            let cn = b.constant(c_bits[i]);
            let (o6, _) = b.lut2(Init::XOR2, an, cn);
            props.push(o6);
            gens.push(an);
        }
        let zero = b.constant(false);
        let (sums, cout) = b.carry4(zero, props.try_into().unwrap(), gens.try_into().unwrap());
        for (i, s) in sums.iter().enumerate() {
            b.output(format!("s{i}"), *s);
        }
        b.output("cout", cout);
        let n = b.finish().unwrap();
        let kb = KnownBits::analyze(&n);
        // 5 + 3 = 8 = 0b1000, cout = 0.
        let expect = [false, false, false, true, false];
        for (i, (_, bits)) in n.output_buses().iter().enumerate() {
            assert_eq!(
                kb.constant_of(bits[0]),
                Some(expect[i]),
                "output {i} of constant adder"
            );
        }
    }
}
