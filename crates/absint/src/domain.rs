//! The three abstract domains the engine propagates.
//!
//! * [`KnownBit`] — a single net abstracted to `0`, `1` or unknown
//!   (`⊤`): the lattice of the per-net forward propagation.
//! * [`Interval`] — an unsigned value interval `[lo, hi]` attached to
//!   a weighted bit group (a primary bus, LSB-first).
//! * [`ErrorBound`] — the error-interval element: a signed interval
//!   containing every possible deviation `approx − exact`, together
//!   with an *achievable* worst-case-error lower bound (with operand
//!   witness), a pointwise relative-error bound and the block's value
//!   interval.
//!
//! All three are plain data; the transfer functions live in
//! [`crate::knownbits`] (netlist level) and [`crate::tree`] (config
//! tree level).

use std::fmt;

/// Abstract value of one net: known `0`, known `1`, or unknown (`⊤`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KnownBit {
    /// Provably 0 under every input assignment.
    Zero,
    /// Provably 1 under every input assignment.
    One,
    /// Not determined by the analysis.
    #[default]
    Top,
}

impl KnownBit {
    /// Lifts a concrete bit into the domain.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            KnownBit::One
        } else {
            KnownBit::Zero
        }
    }

    /// The concrete value, if the bit is known.
    #[must_use]
    pub fn as_const(self) -> Option<bool> {
        match self {
            KnownBit::Zero => Some(false),
            KnownBit::One => Some(true),
            KnownBit::Top => None,
        }
    }

    /// Three-valued XOR (exact on the known sublattice).
    #[must_use]
    pub fn xor(self, other: Self) -> Self {
        match (self.as_const(), other.as_const()) {
            (Some(a), Some(b)) => KnownBit::from_bool(a ^ b),
            _ => KnownBit::Top,
        }
    }

    /// Three-valued 2:1 mux `sel ? a : b` — exact when the select is
    /// known, and still known when both branches agree.
    #[must_use]
    pub fn mux(sel: Self, a: Self, b: Self) -> Self {
        match sel.as_const() {
            Some(true) => a,
            Some(false) => b,
            None => {
                if a != KnownBit::Top && a == b {
                    a
                } else {
                    KnownBit::Top
                }
            }
        }
    }
}

impl fmt::Display for KnownBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KnownBit::Zero => "0",
            KnownBit::One => "1",
            KnownBit::Top => "⊤",
        })
    }
}

/// An unsigned interval `[lo, hi]`, `lo ≤ hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u128,
    /// Inclusive upper bound.
    pub hi: u128,
}

impl Interval {
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: u128, hi: u128) -> Self {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The singleton interval `[v, v]`.
    #[must_use]
    pub fn exact(v: u128) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, v: u128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` if `other` lies entirely inside `self`.
    #[must_use]
    pub fn encloses(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Interval addition.
    #[must_use]
    pub fn add(&self, other: &Interval) -> Self {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }

    /// Interval left shift (multiplication by `2^k`).
    #[must_use]
    pub fn shl(&self, k: u32) -> Self {
        Interval {
            lo: self.lo << k,
            hi: self.hi << k,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// The error-interval domain element attached to one (sub-)multiplier.
///
/// Soundness contract, for every operand pair `(a, b)` of the block,
/// writing `e(a, b) = approx(a, b) − exact(a, b)` (signed):
///
/// * `err_lo ≤ e(a, b) ≤ err_hi` — the error interval contains every
///   deviation, so `wce_ub()` over-approximates the true worst-case
///   error magnitude;
/// * some pair achieves `|e| ≥ wce_lb` — when [`ErrorBound::witness`]
///   is present, that pair achieves `|e| = wce_lb` exactly, so the
///   true worst-case error is bracketed in `[wce_lb, wce_ub()]`;
/// * `|e(a, b)| ≤ mre · exact(a, b)` whenever `exact(a, b) > 0` — a
///   *pointwise* relative bound, strictly stronger than bounding the
///   maximum observed relative error (and what makes the bound
///   compose through quadrant summation);
/// * `value.lo ≤ approx(a, b) ≤ value.hi`;
/// * if [`ErrorBound::no_error_at_zero`], then `exact(a, b) = 0`
///   implies `approx(a, b) = 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBound {
    /// Most negative possible deviation `approx − exact`.
    pub err_lo: i128,
    /// Most positive possible deviation `approx − exact`.
    pub err_hi: i128,
    /// Achievable worst-case-error magnitude: a sound *lower* bound on
    /// the true maximum `|e|`.
    pub wce_lb: u128,
    /// Operand pair `(a, b)` achieving `|e| = wce_lb`, when the
    /// analysis can name one (config trees always can; generic
    /// netlist bounds cannot).
    pub witness: Option<(u64, u64)>,
    /// Pointwise relative-error bound (see the contract above).
    pub mre: f64,
    /// Interval containing every output value of the block.
    pub value: Interval,
    /// The block provably returns 0 when the exact product is 0.
    pub no_error_at_zero: bool,
}

impl ErrorBound {
    /// Sound upper bound on the worst-case error magnitude.
    #[must_use]
    pub fn wce_ub(&self) -> u128 {
        let neg = self.err_lo.unsigned_abs();
        let pos = if self.err_hi > 0 {
            self.err_hi.unsigned_abs()
        } else {
            0
        };
        neg.max(pos)
    }

    /// The exact (zero-error) bound with output values in `value`.
    #[must_use]
    pub fn exact(value: Interval) -> Self {
        ErrorBound {
            err_lo: 0,
            err_hi: 0,
            wce_lb: 0,
            witness: Some((0, 0)),
            mre: 0.0,
            value,
            no_error_at_zero: true,
        }
    }

    /// `true` if `other`'s guarantees are at least as strong on every
    /// axis — i.e. replacing `self` by `other` never weakens a claim.
    /// Used by certificate verification: a recorded bound is accepted
    /// when it is the recomputed bound *or any sound weakening of it*.
    #[must_use]
    pub fn weakens(&self, recomputed: &ErrorBound) -> bool {
        self.err_lo <= recomputed.err_lo
            && self.err_hi >= recomputed.err_hi
            && self.wce_lb <= recomputed.wce_lb
            && self.mre >= recomputed.mre
            && self.value.encloses(&recomputed.value)
            && (!self.no_error_at_zero || recomputed.no_error_at_zero)
    }
}

impl fmt::Display for ErrorBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "e ∈ [{}, {}], WCE ∈ [{}, {}], MRE ≤ {:.6}, value {}",
            self.err_lo,
            self.err_hi,
            self.wce_lb,
            self.wce_ub(),
            self.mre,
            self.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knownbit_ops() {
        use KnownBit::{One, Top, Zero};
        assert_eq!(Zero.xor(One), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(Top.xor(One), Top);
        assert_eq!(KnownBit::mux(One, Zero, Top), Zero);
        assert_eq!(KnownBit::mux(Zero, Top, One), One);
        assert_eq!(KnownBit::mux(Top, One, One), One);
        assert_eq!(KnownBit::mux(Top, One, Zero), Top);
        assert_eq!(KnownBit::mux(Top, Top, Top), Top);
        assert_eq!(KnownBit::from_bool(true).as_const(), Some(true));
        assert_eq!(Top.as_const(), None);
    }

    #[test]
    fn interval_arith() {
        let a = Interval::new(1, 5);
        let b = Interval::exact(3);
        assert_eq!(a.add(&b), Interval::new(4, 8));
        assert_eq!(a.shl(2), Interval::new(4, 20));
        assert!(a.contains(5));
        assert!(!a.contains(6));
        assert!(a.encloses(&Interval::new(2, 4)));
        assert!(!Interval::new(2, 4).encloses(&a));
    }

    #[test]
    #[should_panic(expected = "malformed interval")]
    fn interval_rejects_inverted_bounds() {
        let _ = Interval::new(2, 1);
    }

    #[test]
    fn wce_ub_takes_the_worse_side() {
        let mut b = ErrorBound::exact(Interval::exact(0));
        b.err_lo = -10;
        b.err_hi = 3;
        assert_eq!(b.wce_ub(), 10);
        b.err_hi = 12;
        assert_eq!(b.wce_ub(), 12);
    }

    #[test]
    fn weakens_is_reflexive_and_directional() {
        let tight = ErrorBound {
            err_lo: -8,
            err_hi: 0,
            wce_lb: 8,
            witness: Some((7, 6)),
            mre: 0.2,
            value: Interval::new(0, 225),
            no_error_at_zero: true,
        };
        let mut loose = tight.clone();
        loose.err_lo = -20;
        loose.wce_lb = 0;
        loose.mre = 1.0;
        loose.no_error_at_zero = false;
        assert!(tight.weakens(&tight));
        assert!(loose.weakens(&tight));
        assert!(!tight.weakens(&loose));
    }
}
