//! Netlist-level analysis: known-bits plus weighted-group intervals,
//! with a generic error bound for two-operand multiplier netlists.
//!
//! Unlike the tree analysis (which exploits the configuration
//! grammar), this path works on *any* elaborated netlist — including
//! the roster baselines and fault-injected circuits — by combining
//! the per-net [`KnownBits`] verdicts into value intervals on the
//! weighted output buses. The error bound it derives is coarse
//! (`approx − exact ∈ [out_lo − max_product, out_hi]`) but sound at
//! any width the interval arithmetic supports, with no simulation.

use axmul_fabric::fault::Fault;
use axmul_fabric::{NetId, Netlist};

use crate::domain::{ErrorBound, Interval};
use crate::knownbits::KnownBits;

/// Value interval of one primary-output bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRange {
    /// Bus name.
    pub bus: String,
    /// Interval containing the bus value under every input.
    pub interval: Interval,
}

/// Everything the netlist-level analysis derives.
#[derive(Debug, Clone)]
pub struct NetlistAnalysis {
    /// Name of the analyzed netlist.
    pub name: String,
    /// Per-net known-bits state.
    pub known: KnownBits,
    /// Value interval of each primary-output bus.
    pub outputs: Vec<OutputRange>,
    /// Cell-driven nets proven constant (net, value) — candidates for
    /// dead-logic elimination at any width.
    pub derived_constants: Vec<(NetId, bool)>,
    /// Generic error bound, present when the netlist looks like a
    /// two-operand multiplier (two input buses, at least one output
    /// bus) with operands at most 32 bits each.
    pub error: Option<ErrorBound>,
}

impl NetlistAnalysis {
    /// Compact JSON rendering (hand-rolled — the workspace has no
    /// serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let outs = self
            .outputs
            .iter()
            .map(|o| {
                format!(
                    "{{\"bus\":\"{}\",\"lo\":{},\"hi\":{}}}",
                    o.bus, o.interval.lo, o.interval.hi
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let err = self.error.as_ref().map_or("null".to_string(), |e| {
            format!(
                "{{\"wce_ub\":{},\"err_lo\":{},\"err_hi\":{}}}",
                e.wce_ub(),
                e.err_lo,
                e.err_hi
            )
        });
        format!(
            "{{\"name\":\"{}\",\"outputs\":[{}],\"derived_constants\":{},\"error\":{}}}",
            self.name,
            outs,
            self.derived_constants.len(),
            err
        )
    }
}

/// Analyzes a fault-free netlist.
#[must_use]
pub fn analyze_netlist(netlist: &Netlist) -> NetlistAnalysis {
    analyze_netlist_with_faults(netlist, &[])
}

/// Analyzes a netlist with stuck-at faults injected (the abstract
/// counterpart of [`axmul_fabric::fault::eval_with_faults`]).
#[must_use]
pub fn analyze_netlist_with_faults(netlist: &Netlist, faults: &[Fault]) -> NetlistAnalysis {
    let known = KnownBits::analyze_with_faults(netlist, faults);
    let outputs: Vec<OutputRange> = netlist
        .output_buses()
        .iter()
        .map(|(name, bits)| OutputRange {
            bus: name.clone(),
            interval: known.group_interval(bits),
        })
        .collect();
    let derived_constants = known.derived_constants(netlist);
    let error = multiplier_error_bound(netlist, &outputs);
    NetlistAnalysis {
        name: netlist.name().to_string(),
        known,
        outputs,
        derived_constants,
        error,
    }
}

/// The coarse-but-sound multiplier deviation bound: with the product
/// output confined to `[lo, hi]` and the exact product to
/// `[0, (2^wa − 1)(2^wb − 1)]`, every deviation lies in
/// `[lo − max_product, hi]`.
fn multiplier_error_bound(netlist: &Netlist, outputs: &[OutputRange]) -> Option<ErrorBound> {
    let ins = netlist.input_buses();
    if ins.len() != 2 || outputs.is_empty() {
        return None;
    }
    let wa = ins[0].1.len() as u32;
    let wb = ins[1].1.len() as u32;
    if wa == 0 || wb == 0 || wa > 32 || wb > 32 {
        return None;
    }
    let pmax = ((1u128 << wa) - 1) * ((1u128 << wb) - 1);
    let out = &outputs[0].interval;
    let bound = ErrorBound {
        err_lo: out.lo as i128 - pmax as i128,
        err_hi: out.hi as i128,
        wce_lb: 0,
        witness: None,
        // |e| ≤ wce_ub ≤ wce_ub · exact pointwise for exact ≥ 1.
        mre: 0.0,
        value: *out,
        no_error_at_zero: false,
    };
    Some(ErrorBound {
        mre: bound.wce_ub() as f64,
        ..bound
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::{Init, NetlistBuilder};

    /// A 2×2 exact multiplier: p = a·b via four AND gates and the
    /// identity p = a0b0 + 2(a0b1 + a1b0) + 4a1b1, assembled with LUTs.
    fn mult2x2() -> Netlist {
        let mut b = NetlistBuilder::new("mult2x2");
        let a = b.inputs("a", 2);
        let c = b.inputs("b", 2);
        let (p0, _) = b.lut2(Init::AND2, a[0], c[0]);
        // p1 = a0b1 XOR a1b0, carry into p2.
        let cross = Init::from_fn(|i| {
            let (a0, b1, a1, b0) = (i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0);
            (a0 && b1) ^ (a1 && b0)
        });
        let carry = Init::from_fn(|i| {
            let (a0, b1, a1, b0) = (i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0);
            a0 && b1 && a1 && b0
        });
        let z = b.constant(false);
        let p1 = b.lut6(cross, [a[0], c[1], a[1], c[0], z, z]);
        let mid = b.lut6(carry, [a[0], c[1], a[1], c[0], z, z]);
        let hi = Init::from_fn(|i| {
            let (a1, b1, carry) = (i & 1 != 0, i & 2 != 0, i & 4 != 0);
            (a1 && b1) ^ carry
        });
        let ovf = Init::from_fn(|i| {
            let (a1, b1, carry) = (i & 1 != 0, i & 2 != 0, i & 4 != 0);
            a1 && b1 && carry
        });
        let p2 = b.lut3(hi, a[1], c[1], mid);
        let p3 = b.lut3(ovf, a[1], c[1], mid);
        b.output("p", p0);
        b.output("p1", p1);
        b.output("p2", p2);
        b.output("p3", p3);
        b.finish().unwrap()
    }

    #[test]
    fn multiplier_bound_contains_every_deviation() {
        let n = mult2x2();
        let a = analyze_netlist(&n);
        let e = a.error.expect("two-operand multiplier shape");
        // Exact multiplier: the generic bound is loose but must
        // contain 0 deviation and bracket the output range.
        assert!(e.err_lo <= 0 && e.err_hi >= 0);
        assert!(e.value.hi <= 15);
    }

    #[test]
    fn faulted_outputs_tighten_the_range() {
        let n = mult2x2();
        let outs: Vec<NetId> = n.output_buses().iter().map(|(_, b)| b[0]).collect();
        // Stick every output at 0: all buses collapse to [0, 0] and
        // the deviation bound pins to [-pmax, 0].
        let faults: Vec<Fault> = outs.iter().map(|&o| Fault::sa0(o)).collect();
        let a = analyze_netlist_with_faults(&n, &faults);
        for o in &a.outputs {
            assert_eq!(o.interval, Interval::exact(0), "{}", o.bus);
        }
        let e = a.error.unwrap();
        assert_eq!(e.err_lo, -9);
        assert_eq!(e.err_hi, 0);
        assert_eq!(e.wce_ub(), 9);
    }

    #[test]
    fn non_multiplier_shapes_get_no_error_bound() {
        let mut b = NetlistBuilder::new("one-bus");
        let a = b.inputs("a", 3);
        b.output("y", a[0]);
        let n = b.finish().unwrap();
        assert!(analyze_netlist(&n).error.is_none());
    }
}
