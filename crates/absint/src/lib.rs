//! # axmul-absint
//!
//! Sound static error/range analysis for approximate multipliers: an
//! abstract-interpretation engine that derives worst-case-error and
//! value bounds **without simulating a single input vector**.
//!
//! Three cooperating abstract domains:
//!
//! * **Known-bits** ([`KnownBits`]) — a forward pass over an
//!   elaborated netlist assigning each net `0`, `1` or `⊤`, with
//!   repeated-pin-aware LUT enumeration and three-valued `CARRY4`
//!   semantics. Subsumes truth-table dead-logic detection and works at
//!   any width (the truth-table pass stops at 16 input bits).
//! * **Value intervals** ([`Interval`]) — unsigned ranges on weighted
//!   output groups, built from known bits or composed through the
//!   configuration grammar.
//! * **Error intervals** ([`ErrorBound`]) — signed deviation ranges
//!   `approx − exact`, seeded per 4×4 leaf from the paper's exact
//!   error tables and composed through the accurate / carry-free
//!   summation schemes with interval arithmetic, carrying an
//!   *achievable* lower bound with an operand witness.
//!
//! Every tree analysis ships a machine-checkable [`Certificate`]
//! replayable by [`Certificate::verify`], and the bracketed bounds
//! (`wce_lb ≤ true WCE ≤ wce_ub`) are what lets the DSE engine prune
//! configurations admissibly — a config whose *lower* bound already
//! exceeds a constraint can be discarded without characterizing it.
//!
//! ```
//! use axmul_absint::{analyze_tree, AbsTree, LeafKind};
//! use axmul_core::behavioral::Summation;
//!
//! // The paper's approx-Ca 8×8: all-approximate leaves, accurate sums.
//! let leaf = AbsTree::Leaf(LeafKind::Approx4x4);
//! let ca8 = AbsTree::Quad {
//!     summation: Summation::Accurate,
//!     sub: Box::new([leaf.clone(), leaf.clone(), leaf.clone(), leaf]),
//! };
//! let analysis = analyze_tree(&ca8)?;
//! // The static bound is exact on this design: max error 2312 at
//! // a = 0x77, b = 0x66 — derived with zero simulation.
//! assert_eq!(analysis.bound.wce_lb, 2312);
//! assert_eq!(analysis.bound.wce_ub(), 2312);
//! assert_eq!(analysis.bound.witness, Some((0x77, 0x66)));
//! analysis.certificate.verify()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod cert;
pub mod domain;
pub mod knownbits;
pub mod netlist;
pub mod tree;

pub use cert::{CertError, CertStep, Certificate, Rule};
pub use domain::{ErrorBound, Interval, KnownBit};
pub use knownbits::KnownBits;
pub use netlist::{analyze_netlist, analyze_netlist_with_faults, NetlistAnalysis, OutputRange};
pub use tree::{
    analyze_tree, compose, leaf_seed, AbsTree, LeafKind, TreeAnalysis, MAX_ABSINT_BITS,
};

/// Errors of the tree analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsintError {
    /// The configuration's operand width exceeds what the engine's
    /// fixed-precision interval arithmetic supports.
    WidthTooLarge {
        /// Requested operand width.
        bits: u32,
        /// The supported maximum ([`MAX_ABSINT_BITS`]).
        max: u32,
    },
}

impl fmt::Display for AbsintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsintError::WidthTooLarge { bits, max } => {
                write!(f, "operand width {bits} exceeds the analysis maximum {max}")
            }
        }
    }
}

impl std::error::Error for AbsintError {}
