//! Machine-checkable soundness certificates.
//!
//! [`analyze_tree`](crate::tree::analyze_tree) records its derivation
//! as a topologically-ordered list of steps — one per tree node, leaf
//! seeds first, each compose step naming its children by index. A
//! certificate is *self-contained*: [`Certificate::verify`] replays
//! every rule application with the crate's pure transfer functions and
//! accepts a recorded bound only if it equals the recomputed one or is
//! a sound weakening of it ([`ErrorBound::weakens`]). Because the
//! compose rules are monotone in that weakening order and the leaf
//! seeds are checked against the built-in table, any certificate that
//! verifies yields sound root bounds — independent of who produced it.

use std::fmt;

use axmul_core::behavioral::Summation;

use crate::domain::ErrorBound;
use crate::tree::{compose, leaf_seed, LeafKind};

/// The rule that justifies one certificate step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rule {
    /// Leaf bound taken from the built-in seed table.
    Seed(LeafKind),
    /// Quadrant composition of four earlier steps (`LL`, `HL`, `LH`,
    /// `HH` indices into the step list), children of width `m`.
    Compose {
        /// Summation scheme of the quad node.
        summation: Summation,
        /// Child operand width in bits.
        m: u32,
        /// Indices of the four child steps.
        children: [usize; 4],
    },
}

/// One derivation step: a claimed bound and the rule deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct CertStep {
    /// Canonical key of the (sub-)tree this step bounds.
    pub key: String,
    /// The justifying rule.
    pub rule: Rule,
    /// The claimed bound.
    pub bound: ErrorBound,
}

/// A full derivation; the last step is the root.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    steps: Vec<CertStep>,
}

/// Why a certificate failed to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The certificate has no steps.
    Empty,
    /// A compose step references a step at or after itself.
    ForwardReference {
        /// Index of the offending step.
        step: usize,
        /// The out-of-range child index.
        child: usize,
    },
    /// A claimed bound is neither the recomputed bound nor a sound
    /// weakening of it.
    Mismatch {
        /// Index of the offending step.
        step: usize,
        /// Key of the offending step.
        key: String,
    },
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Empty => write!(f, "empty certificate"),
            CertError::ForwardReference { step, child } => {
                write!(f, "step {step} references non-earlier step {child}")
            }
            CertError::Mismatch { step, key } => {
                write!(
                    f,
                    "step {step} ({key}) claims a bound stronger than its rule derives"
                )
            }
        }
    }
}

impl std::error::Error for CertError {}

impl Certificate {
    /// Wraps a step list (root last).
    #[must_use]
    pub fn new(steps: Vec<CertStep>) -> Self {
        Certificate { steps }
    }

    /// All derivation steps in topological order.
    #[must_use]
    pub fn steps(&self) -> &[CertStep] {
        &self.steps
    }

    /// The root step.
    ///
    /// # Panics
    ///
    /// Panics on an empty certificate.
    #[must_use]
    pub fn root(&self) -> &CertStep {
        self.steps
            .last()
            .expect("certificate has at least one step")
    }

    /// Replays every rule application and checks each claimed bound
    /// against the recomputation.
    ///
    /// # Errors
    ///
    /// Returns the first failing step, see [`CertError`].
    pub fn verify(&self) -> Result<(), CertError> {
        if self.steps.is_empty() {
            return Err(CertError::Empty);
        }
        for (i, step) in self.steps.iter().enumerate() {
            let recomputed = match &step.rule {
                Rule::Seed(kind) => leaf_seed(*kind),
                Rule::Compose {
                    summation,
                    m,
                    children,
                } => {
                    for &c in children {
                        if c >= i {
                            return Err(CertError::ForwardReference { step: i, child: c });
                        }
                    }
                    let bounds = [
                        self.steps[children[0]].bound.clone(),
                        self.steps[children[1]].bound.clone(),
                        self.steps[children[2]].bound.clone(),
                        self.steps[children[3]].bound.clone(),
                    ];
                    compose(*summation, *m, &bounds)
                }
            };
            if !step.bound.weakens(&recomputed) {
                return Err(CertError::Mismatch {
                    step: i,
                    key: step.key.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{analyze_tree, AbsTree};

    fn ca8() -> AbsTree {
        let a = AbsTree::Leaf(LeafKind::Approx4x4);
        AbsTree::Quad {
            summation: Summation::Accurate,
            sub: Box::new([a.clone(), a.clone(), a.clone(), a]),
        }
    }

    #[test]
    fn generated_certificates_verify() {
        let analysis = analyze_tree(&ca8()).unwrap();
        assert_eq!(analysis.certificate.steps().len(), 5);
        analysis.certificate.verify().unwrap();
        assert_eq!(analysis.certificate.root().bound, analysis.bound);
    }

    #[test]
    fn weakened_bounds_still_verify() {
        let analysis = analyze_tree(&ca8()).unwrap();
        let mut cert = analysis.certificate.clone();
        let mut steps = cert.steps().to_vec();
        let root = steps.len() - 1;
        steps[root].bound.err_lo -= 1000;
        steps[root].bound.wce_lb = 0;
        steps[root].bound.mre += 0.5;
        cert = Certificate::new(steps);
        cert.verify().unwrap();
    }

    #[test]
    fn tightened_bounds_are_rejected() {
        let analysis = analyze_tree(&ca8()).unwrap();
        let mut steps = analysis.certificate.steps().to_vec();
        let root = steps.len() - 1;
        steps[root].bound.err_lo = -1; // claims Ca is nearly exact
        let err = Certificate::new(steps).verify().unwrap_err();
        assert!(matches!(err, CertError::Mismatch { .. }));
    }

    #[test]
    fn tampered_leaf_seed_is_rejected() {
        let analysis = analyze_tree(&ca8()).unwrap();
        let mut steps = analysis.certificate.steps().to_vec();
        steps[0].bound.err_lo = 0; // claims the approx leaf is exact
        let err = Certificate::new(steps).verify().unwrap_err();
        assert!(matches!(err, CertError::Mismatch { step: 0, .. }));
    }

    #[test]
    fn forward_references_are_rejected() {
        let analysis = analyze_tree(&ca8()).unwrap();
        let mut steps = analysis.certificate.steps().to_vec();
        let root = steps.len() - 1;
        if let Rule::Compose { children, .. } = &mut steps[root].rule {
            children[0] = root; // self-reference
        }
        let err = Certificate::new(steps).verify().unwrap_err();
        assert!(matches!(err, CertError::ForwardReference { .. }));
    }

    #[test]
    fn empty_certificate_is_rejected() {
        assert_eq!(Certificate::new(Vec::new()).verify(), Err(CertError::Empty));
    }
}
