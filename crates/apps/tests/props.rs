//! Property-based tests of the application substrates.

use axmul_apps::gf256::{mul_slow, Gf256};
use axmul_apps::jpeg::{
    decode_gray, dequantize, encode_gray, fdct_2d, idct_2d, quant_table, quantize, BitReader,
    BitWriter,
};
use axmul_apps::reed_solomon::RsEncoder;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Field laws hold for arbitrary elements.
    #[test]
    fn gf256_field_laws(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        let (x, y, z) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!((x * y) * z, x * (y * z));
        prop_assert_eq!(x * (y + z), x * y + x * z);
        prop_assert_eq!((x * y).value(), mul_slow(a, b));
        prop_assert_eq!(x + x, Gf256::ZERO, "characteristic 2");
        if a != 0 {
            prop_assert_eq!(x * x.inverse(), Gf256::ONE);
        }
    }

    /// Every encoded Reed-Solomon codeword passes the syndrome check;
    /// every single-symbol corruption fails it.
    #[test]
    fn rs_detects_corruption(msg in prop::collection::vec(any::<u8>(), 239), pos in 0usize..255, flip in 1u8..=255) {
        let enc = RsEncoder::rs_255_239();
        let cw = enc.encode(&msg);
        prop_assert!(enc.syndromes_zero(&cw));
        let mut bad = cw.clone();
        bad[pos] ^= flip;
        prop_assert!(!enc.syndromes_zero(&bad));
    }

    /// RS encoding is linear over GF(2⁸): encode(m1 ^ m2) =
    /// encode(m1) ^ encode(m2) (XOR is field addition).
    #[test]
    fn rs_is_linear(m1 in prop::collection::vec(any::<u8>(), 239), m2 in prop::collection::vec(any::<u8>(), 239)) {
        let enc = RsEncoder::rs_255_239();
        let sum: Vec<u8> = m1.iter().zip(&m2).map(|(a, b)| a ^ b).collect();
        let cw_sum = enc.encode(&sum);
        let xor_cw: Vec<u8> = enc
            .encode(&m1)
            .iter()
            .zip(enc.encode(&m2))
            .map(|(a, b)| a ^ b)
            .collect();
        prop_assert_eq!(cw_sum, xor_cw);
    }

    /// The fixed-point DCT round-trips arbitrary level-shifted blocks
    /// within 2 LSBs.
    #[test]
    fn dct_roundtrip(samples in prop::collection::vec(-128i32..128, 64)) {
        let block: [i32; 64] = samples.try_into().unwrap();
        let back = idct_2d(&fdct_2d(&block));
        for i in 0..64 {
            prop_assert!((block[i] - back[i]).abs() <= 2, "sample {}", i);
        }
    }

    /// Quantization error is bounded by half the step size.
    #[test]
    fn quantization_error_bound(coefs in prop::collection::vec(-2047i32..2048, 64), quality in 1u8..=100) {
        let block: [i32; 64] = coefs.try_into().unwrap();
        let table = quant_table(quality);
        let back = dequantize(&quantize(&block, &table), &table);
        for i in 0..64 {
            prop_assert!((block[i] - back[i]).abs() <= i32::from(table[i]) / 2 + 1, "coef {}", i);
        }
    }

    /// Bit I/O round-trips arbitrary field sequences.
    #[test]
    fn bits_roundtrip(fields in prop::collection::vec((any::<u32>(), 1u32..=24), 1..40)) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            let mask = ((1u64 << n) - 1) as u32;
            prop_assert_eq!(r.bits(n), Some(v & mask));
        }
    }

    /// The JPEG encoder round-trips arbitrary images without panicking
    /// and with bounded block-level distortion at high quality.
    #[test]
    fn jpeg_roundtrip(w in 8usize..40, h in 8usize..40, seed in any::<u64>()) {
        // Smooth-ish content (random DC per region) so quality 90 must
        // reconstruct well.
        let mut s = seed;
        let pixels: Vec<u8> = (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                s = s.wrapping_mul(25214903917).wrapping_add(11);
                let base = 40 + ((x / 8 + y / 8) * 29 % 150) as i32;
                (base + ((s >> 60) as i32 - 8)).clamp(0, 255) as u8
            })
            .collect();
        let enc = encode_gray(w, h, &pixels, 90).unwrap();
        let dec = decode_gray(&enc).unwrap();
        prop_assert_eq!(dec.len(), pixels.len());
        let sse: u64 = pixels
            .iter()
            .zip(&dec)
            .map(|(&a, &b)| {
                let d = i64::from(a) - i64::from(b);
                (d * d) as u64
            })
            .sum();
        let mse = sse as f64 / pixels.len() as f64;
        prop_assert!(mse < 150.0, "mse {}", mse);
    }
}
