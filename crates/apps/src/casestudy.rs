//! The Table 1 mapping: implementing the Reed-Solomon and JPEG encoder
//! datapaths on a Virtex-7-class device with DSP blocks enabled and
//! disabled.
//!
//! The model captures the two effects the paper's motivation rests on:
//!
//! * hard DSP blocks live in fixed columns, so reaching them costs
//!   general routing that grows with how many columns the design
//!   spans — which is why the Reed-Solomon encoder (22 tiny constant
//!   GF multipliers the tools nevertheless push into DSPs) gets
//!   *slower* with DSPs enabled;
//! * a multiplier-rich design like the JPEG encoder (ROM-fed generic
//!   16×16 products in the DCT and quantizer) consumes ~56 % of the
//!   device's DSP blocks, and its LUT-only fallback both bloats area
//!   and slows down from routing congestion.
//!
//! Base LUT counts and pre/post-multiplier path segments are sized to
//! the reference RTL scale (the paper's opencores.org designs);
//! everything else — multiplier areas, delays, routing and congestion —
//! comes from the fabric cost models.

use axmul_baselines::csa_tree_mult_netlist;
use axmul_fabric::cost::{AppCost, CostModel, MultImpl};
use axmul_fabric::timing::{analyze, DelayModel};

/// How a multiplier inventory entry is realized in soft logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultKind {
    /// A constant GF(2⁸) multiplier: a small XOR network.
    GaloisConstant,
    /// A generic integer multiplier (operand × ROM coefficient).
    Integer,
}

/// One class of multipliers inside a datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultInventory {
    /// Number of instances.
    pub count: u32,
    /// First operand width.
    pub a_bits: u32,
    /// Second operand width.
    pub b_bits: u32,
    /// Realization class.
    pub kind: MultKind,
}

/// A datapath to be mapped onto the device in either multiplier style.
#[derive(Debug, Clone, PartialEq)]
pub struct AppDatapath {
    /// Application name (Table 1 row).
    pub name: String,
    /// LUTs of the multiplier-independent logic.
    pub base_luts: u32,
    /// Critical path that bypasses every multiplier (ns).
    pub base_delay_ns: f64,
    /// Logic delay feeding the critical multiplier (ns).
    pub pre_mult_ns: f64,
    /// Logic delay after the critical multiplier (ns).
    pub post_mult_ns: f64,
    /// Multiplier inventory.
    pub mults: Vec<MultInventory>,
}

impl AppDatapath {
    /// The RS(255,239) encoder of [`crate::reed_solomon`]: an LFSR with
    /// one constant GF(2⁸) multiplier per generator tap (the synthesis
    /// run of the reference RTL maps 22 of them to DSPs).
    #[must_use]
    pub fn reed_solomon_encoder() -> Self {
        AppDatapath {
            name: "Reed-Solomon Encoder".to_string(),
            base_luts: 2826,
            base_delay_ns: 4.36,
            pre_mult_ns: 0.6,
            post_mult_ns: 0.8,
            mults: vec![MultInventory {
                count: 22,
                a_bits: 8,
                b_bits: 8,
                kind: MultKind::GaloisConstant,
            }],
        }
    }

    /// The JPEG encoder of [`crate::jpeg`] with three parallel block
    /// pipelines: per pipeline, 176 DCT products (11 per 1-D butterfly
    /// × 8 vectors × 2 passes), 32 quantizer products and 2
    /// scale/level products — 630 ROM-fed 16×16 multipliers in total.
    #[must_use]
    pub fn jpeg_encoder() -> Self {
        AppDatapath {
            name: "JPEG Encoder".to_string(),
            base_luts: 4200,
            base_delay_ns: 6.2,
            pre_mult_ns: 1.0,
            post_mult_ns: 1.0,
            mults: vec![MultInventory {
                count: 630,
                a_bits: 16,
                b_bits: 16,
                kind: MultKind::Integer,
            }],
        }
    }

    /// Maps the datapath with the chosen multiplier implementation.
    #[must_use]
    pub fn implement(&self, cost: &CostModel, delay: &DelayModel, style: MultImpl) -> AppCost {
        // Inner (pad-free) delay model for soft multipliers.
        let inner = DelayModel {
            t_input: 0.0,
            t_output: 0.0,
            ..*delay
        };
        let mut luts = self.base_luts;
        let mut dsps = 0u32;
        let mut worst_mult_path = 0.0f64;
        for inv in &self.mults {
            match style {
                MultImpl::Dsp => {
                    dsps += inv.count;
                }
                MultImpl::Lut => {
                    let (area, t) = match inv.kind {
                        MultKind::GaloisConstant => {
                            // A constant GF(2^8) multiplier is 8 XOR
                            // trees over <= 8 taps: ~2 LUTs and two
                            // logic levels after cross-output sharing.
                            (2, 2.0 * (delay.t_lut + delay.t_net))
                        }
                        MultKind::Integer => {
                            let nl = csa_tree_mult_netlist(inv.a_bits, inv.b_bits);
                            let t = analyze(&nl, &inner).critical_path_ns;
                            (nl.lut_count() as u32, t)
                        }
                    };
                    luts += inv.count * area;
                    worst_mult_path = worst_mult_path.max(t);
                }
            }
        }
        if style == MultImpl::Dsp && !self.mults.is_empty() {
            worst_mult_path = cost.dsp_mult_delay(dsps);
        }
        let mult_path = if self.mults.is_empty() {
            0.0
        } else {
            self.pre_mult_ns + worst_mult_path + self.post_mult_ns
        };
        let raw = self.base_delay_ns.max(mult_path);
        let congested = raw * cost_congestion(cost, luts);
        AppCost {
            critical_path_ns: congested,
            luts,
            dsp_blocks: dsps,
        }
    }
}

/// Routing-congestion multiplier: past ~25 % LUT utilization, critical
/// paths stretch as the router detours (cf. Kuon & Rose's FPGA/ASIC gap
/// measurements).
fn cost_congestion(cost: &CostModel, luts: u32) -> f64 {
    let util = f64::from(luts) / f64::from(cost.device.luts);
    1.0 + 0.35 * (util - 0.25).max(0.0)
}

/// Produces the full Table 1: each application in both implementation
/// styles, `(name, dsp_enabled, dsp_disabled)`.
#[must_use]
pub fn table1(cost: &CostModel, delay: &DelayModel) -> Vec<(String, AppCost, AppCost)> {
    [
        AppDatapath::reed_solomon_encoder(),
        AppDatapath::jpeg_encoder(),
    ]
    .into_iter()
    .map(|app| {
        let dsp = app.implement(cost, delay, MultImpl::Dsp);
        let lut = app.implement(cost, delay, MultImpl::Lut);
        (app.name, dsp, lut)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (CostModel, DelayModel) {
        (CostModel::virtex7(), DelayModel::virtex7())
    }

    #[test]
    fn reed_solomon_is_slower_with_dsps() {
        // Table 1's headline: 5.115 ns with DSPs vs 4.358 ns without.
        let (cost, delay) = models();
        let app = AppDatapath::reed_solomon_encoder();
        let dsp = app.implement(&cost, &delay, MultImpl::Dsp);
        let lut = app.implement(&cost, &delay, MultImpl::Lut);
        assert!(
            dsp.critical_path_ns > lut.critical_path_ns,
            "DSP {:.3} should exceed LUT {:.3}",
            dsp.critical_path_ns,
            lut.critical_path_ns
        );
        assert_eq!(dsp.dsp_blocks, 22);
        assert_eq!(lut.dsp_blocks, 0);
        // LUT-only costs only a handful of extra LUTs.
        assert!(lut.luts - dsp.luts < 100);
    }

    #[test]
    fn jpeg_exhausts_dsp_budget() {
        // Table 1: 631 DSPs = 56% of the 7VX330T.
        let (cost, delay) = models();
        let app = AppDatapath::jpeg_encoder();
        let dsp = app.implement(&cost, &delay, MultImpl::Dsp);
        let util = cost.device.dsp_utilization(dsp.dsp_blocks);
        assert!((util - 0.5625).abs() < 0.01, "utilization {util}");
    }

    #[test]
    fn jpeg_lut_fallback_is_slower_and_huge() {
        let (cost, delay) = models();
        let app = AppDatapath::jpeg_encoder();
        let dsp = app.implement(&cost, &delay, MultImpl::Dsp);
        let lut = app.implement(&cost, &delay, MultImpl::Lut);
        assert_eq!(lut.dsp_blocks, 0);
        assert!(
            lut.critical_path_ns > dsp.critical_path_ns,
            "LUT {:.3} should exceed DSP {:.3} (congestion)",
            lut.critical_path_ns,
            dsp.critical_path_ns
        );
        assert!(lut.luts > 50_000, "LUT-only JPEG is enormous: {}", lut.luts);
        assert!(
            lut.luts < cost.device.luts,
            "still fits the device: {}",
            lut.luts
        );
    }

    #[test]
    fn table1_has_both_rows() {
        let (cost, delay) = models();
        let t = table1(&cost, &delay);
        assert_eq!(t.len(), 2);
        assert!(t[0].0.contains("Reed-Solomon"));
        assert!(t[1].0.contains("JPEG"));
    }

    #[test]
    fn congestion_kicks_in_above_quarter_utilization() {
        let (cost, _) = models();
        assert_eq!(cost_congestion(&cost, 1000), 1.0);
        assert!(cost_congestion(&cost, 180_000) > 1.15);
    }
}
