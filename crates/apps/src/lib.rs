//! # axmul-apps
//!
//! The Table 1 motivational case study of the DAC'18 paper: two real
//! encoder applications implemented from scratch, plus the device-level
//! mapping that contrasts their DSP-enabled and LUT-only FPGA
//! implementations.
//!
//! * [`gf256`] — GF(2⁸) arithmetic (the Reed-Solomon substrate).
//! * [`reed_solomon`] — a systematic RS(255,239) encoder with syndrome
//!   verification.
//! * [`jpeg`] — a JPEG encoder core: level shift, 2-D integer DCT,
//!   quantization, zigzag, and run-length/size-category entropy coding,
//!   with an inverse path for round-trip testing.
//! * [`casestudy`] — the resource/latency mapping reproducing Table 1's
//!   shape: the Reed-Solomon encoder gets *slower* when its small
//!   constant multipliers are forced into DSP blocks (column routing
//!   dominates), while the JPEG encoder consumes ~56 % of the device's
//!   DSP blocks.
//!
//! ```
//! use axmul_apps::reed_solomon::RsEncoder;
//!
//! let enc = RsEncoder::rs_255_239();
//! let data = vec![7u8; 239];
//! let codeword = enc.encode(&data);
//! assert_eq!(codeword.len(), 255);
//! assert!(enc.syndromes_zero(&codeword));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casestudy;
pub mod gf256;
pub mod jpeg;
pub mod reed_solomon;
