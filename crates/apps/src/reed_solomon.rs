//! A systematic Reed-Solomon encoder over GF(2⁸) — the first
//! application of the paper's Table 1.
//!
//! The encoder is the classic LFSR structure: the message is divided by
//! the generator polynomial `g(x) = Π (x − α^{fcr+i})`, and the
//! remainder becomes the parity. In hardware each LFSR tap is a
//! *constant* GF multiplier (a small XOR network), which is exactly why
//! forcing them into DSP blocks (Table 1, "DSP Blocks Enabled") buys
//! nothing and costs routing latency.

use crate::gf256::Gf256;

/// A systematic RS(n, k) encoder over GF(2⁸) (`n = 255`).
///
/// # Examples
///
/// ```
/// use axmul_apps::reed_solomon::RsEncoder;
///
/// let enc = RsEncoder::new(16, 0); // RS(255,239), like the case study
/// let msg: Vec<u8> = (0..239).map(|i| i as u8).collect();
/// let cw = enc.encode(&msg);
/// assert_eq!(&cw[..239], &msg[..]); // systematic
/// assert!(enc.syndromes_zero(&cw));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsEncoder {
    generator: Vec<Gf256>, // monic, degree = parity count
    first_consecutive_root: u32,
}

impl RsEncoder {
    /// Creates an encoder with `parity` check symbols and first
    /// consecutive root `α^fcr`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= parity <= 254`.
    #[must_use]
    pub fn new(parity: usize, fcr: u32) -> Self {
        assert!((1..=254).contains(&parity), "parity out of range");
        // g(x) = prod_{i=0}^{parity-1} (x - alpha^{fcr+i})
        let mut g = vec![Gf256::ONE];
        for i in 0..parity {
            let root = Gf256::alpha_pow(fcr + i as u32);
            let mut next = vec![Gf256::ZERO; g.len() + 1];
            for (j, &c) in g.iter().enumerate() {
                next[j] += c * root; // (x - r): r = -r in GF(2^8)
                next[j + 1] += c;
            }
            g = next;
        }
        RsEncoder {
            generator: g,
            first_consecutive_root: fcr,
        }
    }

    /// The standard RS(255, 239) configuration used by the Table 1
    /// case study (16 parity symbols, fcr = 0).
    #[must_use]
    pub fn rs_255_239() -> Self {
        RsEncoder::new(16, 0)
    }

    /// Number of parity symbols.
    #[must_use]
    pub fn parity(&self) -> usize {
        self.generator.len() - 1
    }

    /// Message length `k = 255 − parity`.
    #[must_use]
    pub fn message_len(&self) -> usize {
        255 - self.parity()
    }

    /// The generator polynomial coefficients, lowest degree first
    /// (monic: the last coefficient is 1). These are the constant
    /// multiplier coefficients of the hardware LFSR.
    #[must_use]
    pub fn generator(&self) -> &[Gf256] {
        &self.generator
    }

    /// Systematically encodes `message` (length `k`), returning the
    /// `n = 255`-byte codeword `message ‖ parity`.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() != self.message_len()`.
    #[must_use]
    pub fn encode(&self, message: &[u8]) -> Vec<u8> {
        assert_eq!(
            message.len(),
            self.message_len(),
            "message must be exactly k symbols"
        );
        let p = self.parity();
        // LFSR division: shift message in, MSB-first.
        let mut reg = vec![Gf256::ZERO; p];
        for &m in message {
            let feedback = Gf256::new(m) + reg[p - 1];
            for i in (1..p).rev() {
                reg[i] = reg[i - 1] + feedback * self.generator[i];
            }
            reg[0] = feedback * self.generator[0];
        }
        let mut cw = message.to_vec();
        // Highest-degree register first (remainder coefficients).
        cw.extend(reg.iter().rev().map(|g| g.value()));
        cw
    }

    /// Evaluates all syndromes `S_i = c(α^{fcr+i})`; a valid codeword
    /// has every syndrome zero.
    #[must_use]
    pub fn syndromes_zero(&self, codeword: &[u8]) -> bool {
        self.syndromes(codeword).iter().all(|s| *s == Gf256::ZERO)
    }

    /// Computes the syndrome vector of a received word.
    #[must_use]
    pub fn syndromes(&self, codeword: &[u8]) -> Vec<Gf256> {
        (0..self.parity())
            .map(|i| {
                let x = Gf256::alpha_pow(self.first_consecutive_root + i as u32);
                // Horner evaluation, highest-degree coefficient first.
                codeword
                    .iter()
                    .fold(Gf256::ZERO, |acc, &c| acc * x + Gf256::new(c))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_monic_with_correct_degree() {
        let enc = RsEncoder::rs_255_239();
        assert_eq!(enc.generator().len(), 17);
        assert_eq!(*enc.generator().last().unwrap(), Gf256::ONE);
        assert_eq!(enc.parity(), 16);
        assert_eq!(enc.message_len(), 239);
    }

    #[test]
    fn generator_roots_are_consecutive_alpha_powers() {
        let enc = RsEncoder::new(8, 1);
        for i in 0..8 {
            let root = Gf256::alpha_pow(1 + i);
            let val = enc
                .generator()
                .iter()
                .enumerate()
                .fold(Gf256::ZERO, |acc, (j, &c)| acc + c * root.pow(j as u32));
            assert_eq!(val, Gf256::ZERO, "g(alpha^{}) != 0", 1 + i);
        }
    }

    #[test]
    fn codewords_have_zero_syndromes() {
        let enc = RsEncoder::rs_255_239();
        for seed in 0..5u64 {
            let msg: Vec<u8> = (0..239)
                .map(|i| (i as u64 * 131 + seed * 17 + 3).wrapping_mul(251) as u8)
                .collect();
            let cw = enc.encode(&msg);
            assert_eq!(cw.len(), 255);
            assert_eq!(&cw[..239], &msg[..], "systematic prefix");
            assert!(enc.syndromes_zero(&cw), "seed {seed}");
        }
    }

    #[test]
    fn corrupted_codewords_fail_syndrome_check() {
        let enc = RsEncoder::rs_255_239();
        let msg = vec![0xA5u8; 239];
        let cw = enc.encode(&msg);
        for pos in [0usize, 100, 238, 239, 254] {
            let mut bad = cw.clone();
            bad[pos] ^= 0x01;
            assert!(!enc.syndromes_zero(&bad), "flip at {pos} undetected");
        }
    }

    #[test]
    fn all_zero_message_has_zero_parity() {
        let enc = RsEncoder::rs_255_239();
        let cw = enc.encode(&[0u8; 239]);
        assert!(cw.iter().all(|&b| b == 0));
    }

    #[test]
    fn small_code_parity_matches_polynomial_division() {
        // RS(255, 251) with 4 parity symbols: verify against direct
        // polynomial remainder computation.
        let enc = RsEncoder::new(4, 0);
        let msg: Vec<u8> = (0..251).map(|i| i as u8).collect();
        let cw = enc.encode(&msg);
        // Direct long division of msg * x^4 by g(x).
        let mut dividend: Vec<Gf256> = msg.iter().map(|&m| Gf256::new(m)).collect();
        dividend.extend([Gf256::ZERO; 4]);
        let g = enc.generator();
        for i in 0..251 {
            let coef = dividend[i];
            if coef != Gf256::ZERO {
                for (j, &gc) in g.iter().enumerate() {
                    // g is lowest-first; align highest degree at i.
                    dividend[i + 4 - j] += coef * gc;
                }
            }
        }
        let remainder: Vec<u8> = dividend[251..].iter().map(|g| g.value()).collect();
        assert_eq!(&cw[251..], &remainder[..]);
    }
}
