//! Arithmetic in GF(2⁸) with the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11D), the field used by CCSDS/DVB-style
//! Reed-Solomon codes.
//!
//! Multiplication is table-driven (exp/log), which is also how the
//! hardware encoder's *variable* multipliers would be built; the
//! encoder itself only needs *constant* multipliers, which synthesize
//! to small XOR networks — the crux of Table 1's Reed-Solomon row.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Sub};

/// The primitive polynomial (without the x⁸ term): 0x1D.
pub const POLY: u16 = 0x11D;

/// An element of GF(2⁸).
///
/// # Examples
///
/// ```
/// use axmul_apps::gf256::Gf256;
///
/// let a = Gf256::new(0x53);
/// let b = Gf256::new(0xCA);
/// assert_eq!((a + b).value(), 0x53 ^ 0xCA);  // addition is XOR
/// assert_eq!(a * a.inverse(), Gf256::ONE);   // multiplicative inverse
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(u8);

struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The primitive element α (= 2).
    pub const ALPHA: Gf256 = Gf256(2);

    /// Wraps a byte as a field element.
    #[must_use]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// The underlying byte.
    #[must_use]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// α raised to `power` (mod the field order 255).
    #[must_use]
    pub fn alpha_pow(power: u32) -> Self {
        Gf256(tables().exp[(power % 255) as usize])
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero (which has no inverse).
    #[must_use]
    pub fn inverse(self) -> Self {
        assert!(self.0 != 0, "zero has no multiplicative inverse");
        let t = tables();
        Gf256(t.exp[255 - t.log[self.0 as usize] as usize])
    }

    /// `self` raised to `power`.
    #[must_use]
    pub fn pow(self, power: u32) -> Self {
        if self.0 == 0 {
            return if power == 0 { Gf256::ONE } else { Gf256::ZERO };
        }
        let t = tables();
        let l = u64::from(t.log[self.0 as usize]) * u64::from(power);
        Gf256(t.exp[(l % 255) as usize])
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    /// Addition in GF(2^8) is carry-less: bitwise XOR.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    /// Subtraction equals addition in characteristic 2.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf256) -> Gf256 {
        self + rhs
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let t = tables();
        Gf256(t.exp[t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize])
    }
}

impl MulAssign for Gf256 {
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04X}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    fn from(v: Gf256) -> u8 {
        v.0
    }
}

/// Bit-serial ("Russian peasant") multiplication — the structural
/// definition the table-driven fast path must agree with.
#[must_use]
pub fn mul_slow(a: u8, b: u8) -> u8 {
    let mut acc: u16 = 0;
    let mut a = u16::from(a);
    let mut b = b;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a <<= 1;
        if a & 0x100 != 0 {
            a ^= POLY;
        }
        b >>= 1;
    }
    acc as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mul_equals_bit_serial_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    (Gf256::new(a) * Gf256::new(b)).value(),
                    mul_slow(a, b),
                    "a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn field_axioms_hold_on_samples() {
        let elems: Vec<Gf256> = (0..=255).step_by(7).map(Gf256::new).collect();
        for &a in &elems {
            for &b in &elems {
                assert_eq!(a * b, b * a, "commutativity");
                assert_eq!(a + b, b + a);
                for &c in &elems {
                    assert_eq!((a * b) * c, a * (b * c), "associativity");
                    assert_eq!(a * (b + c), a * b + a * c, "distributivity");
                }
            }
        }
    }

    #[test]
    fn inverses_are_inverses() {
        for v in 1..=255u8 {
            let a = Gf256::new(v);
            assert_eq!(a * a.inverse(), Gf256::ONE, "v={v:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_has_no_inverse() {
        let _ = Gf256::ZERO.inverse();
    }

    #[test]
    fn alpha_generates_the_field() {
        let mut seen = [false; 256];
        for p in 0..255 {
            let v = Gf256::alpha_pow(p).value();
            assert!(!seen[v as usize], "alpha^{p} repeats");
            seen[v as usize] = true;
        }
        assert!(!seen[0], "powers of alpha never hit zero");
    }

    #[test]
    fn pow_consistency() {
        let a = Gf256::new(0x1D);
        let mut acc = Gf256::ONE;
        for p in 0..20 {
            assert_eq!(a.pow(p), acc);
            acc *= a;
        }
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
    }

    #[test]
    fn subtraction_is_addition() {
        let a = Gf256::new(0xAB);
        let b = Gf256::new(0x42);
        assert_eq!(a - b, a + b);
    }
}
