//! The standard JPEG luminance Huffman tables (Annex K, Tables K.3 and
//! K.5), built from their canonical `BITS`/`HUFFVAL` specification, plus
//! the amplitude size-category coding shared by DC and AC symbols.

use std::collections::HashMap;

use super::bits::{BitReader, BitWriter};

/// A canonical JPEG Huffman table: encode (symbol → code) and decode
/// (bit-by-bit walk).
#[derive(Debug, Clone)]
pub struct HuffmanTable {
    // symbol -> (code, length)
    encode: HashMap<u8, (u32, u32)>,
    // (code, length) -> symbol
    decode: HashMap<(u32, u32), u8>,
    max_len: u32,
}

impl HuffmanTable {
    /// Builds a table from the JPEG `BITS` array (number of codes of
    /// each length 1..=16) and the `HUFFVAL` symbol list.
    ///
    /// # Panics
    ///
    /// Panics if the specification is inconsistent (wrong symbol count
    /// or code overflow).
    #[must_use]
    pub fn from_spec(bits: &[u8; 16], values: &[u8]) -> Self {
        let total: usize = bits.iter().map(|&b| b as usize).sum();
        assert_eq!(total, values.len(), "BITS/HUFFVAL mismatch");
        let mut encode = HashMap::new();
        let mut decode = HashMap::new();
        let mut code = 0u32;
        let mut k = 0usize;
        let mut max_len = 0;
        for (len_minus_1, &count) in bits.iter().enumerate() {
            let len = len_minus_1 as u32 + 1;
            for _ in 0..count {
                assert!(code < (1 << len), "canonical code overflow");
                let sym = values[k];
                encode.insert(sym, (code, len));
                decode.insert((code, len), sym);
                code += 1;
                k += 1;
                max_len = len;
            }
            code <<= 1;
        }
        HuffmanTable {
            encode,
            decode,
            max_len,
        }
    }

    /// Writes the code for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is not in the table.
    pub fn write(&self, w: &mut BitWriter, symbol: u8) {
        let (code, len) = self.encode[&symbol];
        w.write(code, len);
    }

    /// Decodes one symbol; `None` on truncated input or invalid code.
    pub fn read(&self, r: &mut BitReader<'_>) -> Option<u8> {
        let mut code = 0u32;
        for len in 1..=self.max_len {
            code = (code << 1) | r.bit()?;
            if let Some(&sym) = self.decode.get(&(code, len)) {
                return Some(sym);
            }
        }
        None
    }

    /// Number of symbols in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.encode.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.encode.is_empty()
    }
}

/// The standard luminance DC table (Annex K, Table K.3).
#[must_use]
pub fn luma_dc() -> HuffmanTable {
    let bits: [u8; 16] = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
    let values: [u8; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
    HuffmanTable::from_spec(&bits, &values)
}

/// The standard luminance AC table (Annex K, Table K.5). Symbols are
/// `(run << 4) | size`, plus `0x00` (end-of-block) and `0xF0` (ZRL).
#[must_use]
pub fn luma_ac() -> HuffmanTable {
    let bits: [u8; 16] = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 125];
    let values: [u8; 162] = [
        0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61,
        0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08, 0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52,
        0xD1, 0xF0, 0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25,
        0x26, 0x27, 0x28, 0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45,
        0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5A, 0x63, 0x64,
        0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7A, 0x83,
        0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99,
        0x9A, 0xA2, 0xA3, 0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
        0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9, 0xCA, 0xD2, 0xD3,
        0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8,
        0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
    ];
    HuffmanTable::from_spec(&bits, &values)
}

/// Lazily-constructed shared luminance DC table.
pub static LUMA_DC: std::sync::LazyLock<HuffmanTable> = std::sync::LazyLock::new(luma_dc);
/// Lazily-constructed shared luminance AC table.
pub static LUMA_AC: std::sync::LazyLock<HuffmanTable> = std::sync::LazyLock::new(luma_ac);

/// The JPEG size category of an amplitude: the bit length of `|v|`
/// (category 0 is the value 0).
#[must_use]
pub fn size_category(v: i32) -> u32 {
    32 - v.unsigned_abs().leading_zeros()
}

/// Writes an amplitude in JPEG's one's-complement-style variable-length
/// form: `size_category` bits, negatives offset by `2^size − 1`.
pub fn write_amplitude(w: &mut BitWriter, v: i32) {
    let size = size_category(v);
    if size == 0 {
        return;
    }
    let bits = if v >= 0 {
        v as u32
    } else {
        (v + (1 << size) - 1) as u32
    };
    w.write(bits, size);
}

/// Reads back an amplitude of the given size category.
pub fn read_amplitude(r: &mut BitReader<'_>, size: u32) -> Option<i32> {
    if size == 0 {
        return Some(0);
    }
    let bits = r.bits(size)?;
    // MSB set -> positive; else negative offset form.
    if bits >> (size - 1) & 1 == 1 {
        Some(bits as i32)
    } else {
        Some(bits as i32 - (1 << size) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_table_known_codes() {
        // Annex K: DC category 0 -> 00 (2 bits), category 2 -> 011.
        let t = luma_dc();
        assert_eq!(t.len(), 12);
        let mut w = BitWriter::new();
        t.write(&mut w, 0);
        assert_eq!(w.bit_len(), 2);
        let mut w = BitWriter::new();
        t.write(&mut w, 11);
        assert_eq!(w.bit_len(), 9, "category 11 is the 9-bit code");
    }

    #[test]
    fn ac_table_has_162_symbols_and_known_lengths() {
        let t = luma_ac();
        assert_eq!(t.len(), 162);
        // EOB (0x00) is 4 bits; ZRL (0xF0) is 11 bits.
        let mut w = BitWriter::new();
        t.write(&mut w, 0x00);
        assert_eq!(w.bit_len(), 4);
        let mut w = BitWriter::new();
        t.write(&mut w, 0xF0);
        assert_eq!(w.bit_len(), 11);
    }

    #[test]
    fn all_symbols_round_trip() {
        for table in [luma_dc(), luma_ac()] {
            let mut w = BitWriter::new();
            let mut symbols: Vec<u8> = table.encode.keys().copied().collect();
            symbols.sort_unstable();
            for &s in &symbols {
                table.write(&mut w, s);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &s in &symbols {
                assert_eq!(table.read(&mut r), Some(s));
            }
        }
    }

    #[test]
    fn codes_are_prefix_free() {
        for table in [luma_dc(), luma_ac()] {
            let codes: Vec<(u32, u32)> = table.encode.values().copied().collect();
            for (i, &(c1, l1)) in codes.iter().enumerate() {
                for &(c2, l2) in &codes[i + 1..] {
                    let (short, slen, long, llen) = if l1 <= l2 {
                        (c1, l1, c2, l2)
                    } else {
                        (c2, l2, c1, l1)
                    };
                    assert!(
                        !(llen > slen && (long >> (llen - slen)) == short),
                        "{c1:b}/{l1} prefixes {c2:b}/{l2}"
                    );
                }
            }
        }
    }

    #[test]
    fn size_categories() {
        assert_eq!(size_category(0), 0);
        assert_eq!(size_category(1), 1);
        assert_eq!(size_category(-1), 1);
        assert_eq!(size_category(2), 2);
        assert_eq!(size_category(-3), 2);
        assert_eq!(size_category(255), 8);
        assert_eq!(size_category(-1024), 11);
    }

    #[test]
    fn amplitudes_round_trip() {
        for v in [-2047, -1024, -255, -3, -1, 0, 1, 2, 3, 127, 1024, 2047] {
            let mut w = BitWriter::new();
            write_amplitude(&mut w, v);
            let size = size_category(v);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(read_amplitude(&mut r, size), Some(v), "v={v}");
        }
    }
}
