//! A JPEG encoder core — the second application of the paper's
//! Table 1.
//!
//! The pipeline implements the heart of a baseline JPEG encoder for
//! grayscale images: level shift, fixed-point 2-D DCT, quality-scaled
//! quantization, zigzag reordering, and run-length/size-category
//! entropy coding with the standard (Annex K) luminance Huffman tables.
//! A full inverse path (entropy decode, dequantize, IDCT) exists so the
//! encoder can be validated end-to-end by round-trip PSNR.
//!
//! It produces the entropy-coded segment, not a JFIF container — the
//! hardware case study concerns the datapath (where the multipliers
//! live), not file framing.
//!
//! ```
//! use axmul_apps::jpeg::{decode_gray, encode_gray};
//!
//! let pixels: Vec<u8> = (0..64 * 64).map(|i| (i % 251) as u8).collect();
//! let jpeg = encode_gray(64, 64, &pixels, 75)?;
//! assert!(jpeg.bytes.len() < pixels.len()); // it actually compresses
//! let back = decode_gray(&jpeg)?;
//! # Ok::<(), axmul_apps::jpeg::JpegError>(())
//! ```

mod bits;
mod dct;
mod encoder;
mod huffman;
mod quant;

pub use bits::{BitReader, BitWriter};
pub use dct::{fdct_2d, idct_2d};
pub use encoder::{decode_gray, encode_gray, EncodedImage, JpegError};
pub use huffman::{HuffmanTable, LUMA_AC, LUMA_DC};
pub use quant::{dequantize, quant_table, quantize, BASE_LUMA_QUANT, ZIGZAG};
