//! Fixed-point 8×8 forward and inverse DCT.
//!
//! The hardware datapath this models multiplies 13-bit cosine constants
//! against sample data — the wide constant multiplications that consume
//! DSP blocks in Table 1's JPEG row. The software model uses the same
//! row-column decomposition with 13-bit fixed-point weights and
//! round-to-nearest shifts.

const SCALE_BITS: u32 = 13;

// w[u][x] = C(u)/2 * cos((2x+1) u pi / 16), scaled by 2^13.
fn weights() -> &'static [[i32; 8]; 8] {
    use std::sync::OnceLock;
    static W: OnceLock<[[i32; 8]; 8]> = OnceLock::new();
    W.get_or_init(|| {
        let mut w = [[0i32; 8]; 8];
        for (u, row) in w.iter_mut().enumerate() {
            let cu = if u == 0 { 1.0 / f64::sqrt(2.0) } else { 1.0 };
            for (x, val) in row.iter_mut().enumerate() {
                let angle = (2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0;
                *val = (cu / 2.0 * angle.cos() * f64::from(1 << SCALE_BITS)).round() as i32;
            }
        }
        w
    })
}

fn dct_1d(input: &[i32; 8]) -> [i32; 8] {
    let w = weights();
    let mut out = [0i32; 8];
    for (u, o) in out.iter_mut().enumerate() {
        let mut acc = 0i64;
        for x in 0..8 {
            acc += i64::from(input[x]) * i64::from(w[u][x]);
        }
        *o = ((acc + (1 << (SCALE_BITS - 1))) >> SCALE_BITS) as i32;
    }
    out
}

fn idct_1d(input: &[i32; 8]) -> [i32; 8] {
    let w = weights();
    let mut out = [0i32; 8];
    for (x, o) in out.iter_mut().enumerate() {
        let mut acc = 0i64;
        for u in 0..8 {
            acc += i64::from(input[u]) * i64::from(w[u][x]);
        }
        *o = ((acc + (1 << (SCALE_BITS - 1))) >> SCALE_BITS) as i32;
    }
    out
}

/// Forward 2-D DCT of a level-shifted 8×8 block (row-major), producing
/// coefficients in the range a JPEG quantizer expects (DC ≈ 8 × mean).
///
/// # Examples
///
/// ```
/// use axmul_apps::jpeg::fdct_2d;
///
/// let flat = [100i32; 64];
/// let coefs = fdct_2d(&flat);
/// assert_eq!(coefs[0], 800);                  // DC = 8 * 100
/// assert!(coefs[1..].iter().all(|&c| c == 0)); // no AC energy
/// ```
#[must_use]
pub fn fdct_2d(block: &[i32; 64]) -> [i32; 64] {
    let mut tmp = [0i32; 64];
    for r in 0..8 {
        let row: [i32; 8] = std::array::from_fn(|c| block[r * 8 + c]);
        let out = dct_1d(&row);
        tmp[r * 8..r * 8 + 8].copy_from_slice(&out);
    }
    let mut result = [0i32; 64];
    for c in 0..8 {
        let col: [i32; 8] = std::array::from_fn(|r| tmp[r * 8 + c]);
        let out = dct_1d(&col);
        for r in 0..8 {
            result[r * 8 + c] = out[r];
        }
    }
    result
}

/// Inverse 2-D DCT, returning level-shifted samples.
#[must_use]
pub fn idct_2d(coefs: &[i32; 64]) -> [i32; 64] {
    let mut tmp = [0i32; 64];
    for c in 0..8 {
        let col: [i32; 8] = std::array::from_fn(|r| coefs[r * 8 + c]);
        let out = idct_1d(&col);
        for r in 0..8 {
            tmp[r * 8 + c] = out[r];
        }
    }
    let mut result = [0i32; 64];
    for r in 0..8 {
        let row: [i32; 8] = std::array::from_fn(|c| tmp[r * 8 + c]);
        let out = idct_1d(&row);
        result[r * 8..r * 8 + 8].copy_from_slice(&out);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_fdct(block: &[i32; 64]) -> [f64; 64] {
        let mut out = [0.0f64; 64];
        for v in 0..8 {
            for u in 0..8 {
                let cu = if u == 0 { 1.0 / f64::sqrt(2.0) } else { 1.0 };
                let cv = if v == 0 { 1.0 / f64::sqrt(2.0) } else { 1.0 };
                let mut acc = 0.0;
                for y in 0..8 {
                    for x in 0..8 {
                        acc += f64::from(block[y * 8 + x])
                            * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0)
                                .cos()
                            * ((2.0 * y as f64 + 1.0) * v as f64 * std::f64::consts::PI / 16.0)
                                .cos();
                    }
                }
                out[v * 8 + u] = 0.25 * cu * cv * acc;
            }
        }
        out
    }

    fn test_block(seed: i32) -> [i32; 64] {
        std::array::from_fn(|i| ((i as i32 * 37 + seed * 101) % 256) - 128)
    }

    #[test]
    fn fixed_point_matches_float_reference() {
        for seed in 0..8 {
            let block = test_block(seed);
            let fixed = fdct_2d(&block);
            let float = reference_fdct(&block);
            for i in 0..64 {
                assert!(
                    (f64::from(fixed[i]) - float[i]).abs() <= 2.0,
                    "seed {seed} coef {i}: {} vs {}",
                    fixed[i],
                    float[i]
                );
            }
        }
    }

    #[test]
    fn dc_of_flat_block_is_8x_mean() {
        let block = [-50i32; 64];
        let coefs = fdct_2d(&block);
        // Fixed-point shifts floor toward -inf, so negatives may be
        // one LSB off the ideal 8x mean.
        assert!((coefs[0] - -400).abs() <= 1, "{}", coefs[0]);
        assert_eq!(fdct_2d(&[100i32; 64])[0], 800);
    }

    #[test]
    fn round_trip_is_near_lossless() {
        for seed in 0..8 {
            let block = test_block(seed);
            let back = idct_2d(&fdct_2d(&block));
            for i in 0..64 {
                assert!(
                    (block[i] - back[i]).abs() <= 2,
                    "seed {seed} sample {i}: {} vs {}",
                    block[i],
                    back[i]
                );
            }
        }
    }

    #[test]
    fn pure_cosine_concentrates_energy() {
        // A horizontal cosine at frequency u=2 should put (almost) all
        // energy into coefficient (v=0, u=2).
        let block: [i32; 64] = std::array::from_fn(|i| {
            let x = i % 8;
            (100.0 * ((2.0 * x as f64 + 1.0) * 2.0 * std::f64::consts::PI / 16.0).cos()) as i32
        });
        let coefs = fdct_2d(&block);
        let main = coefs[2].abs();
        for (i, &c) in coefs.iter().enumerate() {
            if i != 2 {
                assert!(c.abs() < main / 8, "leakage at {i}: {c} vs main {main}");
            }
        }
    }
}
