//! MSB-first bit I/O for the entropy-coded segment.

/// Accumulates bits MSB-first into a byte vector.
///
/// # Examples
///
/// ```
/// use axmul_apps::jpeg::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write(0b101, 3);
/// w.write(0b1, 1);
/// let bytes = w.finish();
/// assert_eq!(bytes, vec![0b1011_1111]); // padded with 1s like JPEG
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    current: u8,
    filled: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the `count` low bits of `value`, MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn write(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "at most 32 bits per write");
        for i in (0..count).rev() {
            self.current = (self.current << 1) | ((value >> i) & 1) as u8;
            self.filled += 1;
            if self.filled == 8 {
                self.bytes.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.filled as usize
    }

    /// Pads the final byte with 1-bits (the JPEG convention) and
    /// returns the byte stream.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            let pad = 8 - self.filled;
            self.current = (self.current << pad) | ((1u16 << pad) - 1) as u8;
            self.bytes.push(self.current);
        }
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of stream.
    pub fn bit(&mut self) -> Option<u32> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - self.pos % 8)) & 1;
        self.pos += 1;
        Some(u32::from(bit))
    }

    /// Reads `count` bits MSB-first; `None` if the stream is exhausted.
    pub fn bits(&mut self, count: u32) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | self.bit()?;
        }
        Some(v)
    }

    /// Bits consumed so far.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        let mut w = BitWriter::new();
        let fields = [(0x1u32, 1u32), (0x2A, 6), (0xFFFF, 16), (0, 3), (0x155, 9)];
        for &(v, n) in &fields {
            w.write(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            let mask = ((1u64 << n) - 1) as u32;
            assert_eq!(r.bits(n), Some(v & mask));
        }
    }

    #[test]
    fn writer_pads_with_ones() {
        let mut w = BitWriter::new();
        w.write(0, 2);
        assert_eq!(w.finish(), vec![0b0011_1111]);
    }

    #[test]
    fn empty_writer_produces_nothing() {
        assert!(BitWriter::new().finish().is_empty());
        assert_eq!(BitWriter::new().bit_len(), 0);
    }

    #[test]
    fn reader_ends_cleanly() {
        let mut r = BitReader::new(&[0xA5]);
        assert_eq!(r.bits(8), Some(0xA5));
        assert_eq!(r.bit(), None);
        assert_eq!(r.bits(4), None);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        w.write(0b1111, 4);
        assert_eq!(w.bit_len(), 4);
        w.write(0b11111, 5);
        assert_eq!(w.bit_len(), 9);
    }
}
