//! Quantization and zigzag reordering (JPEG Annex K).

/// The standard luminance quantization matrix (Annex K, Table K.1),
/// row-major.
pub const BASE_LUMA_QUANT: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The zigzag scan order: `ZIGZAG[k]` is the row-major index of the
/// `k`-th coefficient in scan order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Builds the quality-scaled quantization table using the IJG quality
/// convention (`quality` in 1..=100; 50 = the base table).
///
/// # Panics
///
/// Panics unless `1 <= quality <= 100`.
///
/// # Examples
///
/// ```
/// use axmul_apps::jpeg::quant_table;
///
/// assert_eq!(quant_table(50)[0], 16); // base table at quality 50
/// assert!(quant_table(90)[0] < 16);   // finer steps at high quality
/// assert!(quant_table(10)[0] > 16);   // coarser at low quality
/// ```
#[must_use]
pub fn quant_table(quality: u8) -> [u16; 64] {
    assert!((1..=100).contains(&quality), "quality must be 1..=100");
    let scale: u32 = if quality < 50 {
        5000 / u32::from(quality)
    } else {
        200 - 2 * u32::from(quality)
    };
    let mut table = [0u16; 64];
    for (t, &base) in table.iter_mut().zip(BASE_LUMA_QUANT.iter()) {
        *t = ((u32::from(base) * scale + 50) / 100).clamp(1, 255) as u16;
    }
    table
}

/// Quantizes DCT coefficients: `round(coef / q)` with round-half-away.
#[must_use]
pub fn quantize(coefs: &[i32; 64], table: &[u16; 64]) -> [i16; 64] {
    std::array::from_fn(|i| {
        let q = i32::from(table[i]);
        let c = coefs[i];
        let half = q / 2;
        let r = if c >= 0 {
            (c + half) / q
        } else {
            -((-c + half) / q)
        };
        r as i16
    })
}

/// Reverses quantization.
#[must_use]
pub fn dequantize(levels: &[i16; 64], table: &[u16; 64]) -> [i32; 64] {
    std::array::from_fn(|i| i32::from(levels[i]) * i32::from(table[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z], "duplicate index {z}");
            seen[z] = true;
        }
        // Scan starts at DC and moves along the first anti-diagonal.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn zigzag_walks_anti_diagonals() {
        // Manhattan "diagonal index" (row + col) is non-decreasing in
        // steps of at most 1.
        for w in ZIGZAG.windows(2) {
            let d0 = w[0] / 8 + w[0] % 8;
            let d1 = w[1] / 8 + w[1] % 8;
            assert!(d1 == d0 || d1 == d0 + 1, "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn quality_scaling_monotone() {
        let q10 = quant_table(10);
        let q50 = quant_table(50);
        let q95 = quant_table(95);
        for i in 0..64 {
            assert!(q10[i] >= q50[i]);
            assert!(q50[i] >= q95[i]);
            assert!(q95[i] >= 1);
        }
        assert_eq!(q50, BASE_LUMA_QUANT);
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let mut coefs = [0i32; 64];
        coefs[0] = 24; // q = 16 -> 1.5 rounds away to 2
        coefs[1] = -17; // q = 11 -> -1.54 rounds to -2
        coefs[2] = 4; // q = 10 -> 0.4 rounds to 0
        let q = quantize(&coefs, &BASE_LUMA_QUANT);
        assert_eq!(q[0], 2);
        assert_eq!(q[1], -2);
        assert_eq!(q[2], 0);
    }

    #[test]
    fn quantize_dequantize_bounds_error() {
        let coefs: [i32; 64] = std::array::from_fn(|i| (i as i32 - 32) * 13);
        let table = quant_table(75);
        let back = dequantize(&quantize(&coefs, &table), &table);
        for i in 0..64 {
            assert!(
                (coefs[i] - back[i]).abs() <= i32::from(table[i] / 2) + 1,
                "coef {i}"
            );
        }
    }
}
