//! The block pipeline and image-level encoder/decoder.

use std::fmt;

use super::bits::{BitReader, BitWriter};
use super::dct::{fdct_2d, idct_2d};
use super::huffman::{read_amplitude, size_category, write_amplitude, LUMA_AC, LUMA_DC};
use super::quant::{dequantize, quant_table, quantize, ZIGZAG};

/// A compressed grayscale image: the entropy-coded segment plus the
/// parameters needed to decode it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedImage {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// IJG quality factor used.
    pub quality: u8,
    /// The entropy-coded segment.
    pub bytes: Vec<u8>,
}

/// Errors from the encoder/decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JpegError {
    /// Pixel buffer length does not match `width * height`.
    DimensionMismatch {
        /// Expected pixel count.
        expected: usize,
        /// Supplied pixel count.
        got: usize,
    },
    /// The entropy-coded segment ended prematurely or contained an
    /// invalid code.
    Truncated,
    /// Width or height is zero.
    EmptyImage,
}

impl fmt::Display for JpegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JpegError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} pixels, got {got}")
            }
            JpegError::Truncated => f.write_str("truncated or corrupt entropy segment"),
            JpegError::EmptyImage => f.write_str("image dimensions must be nonzero"),
        }
    }
}

impl std::error::Error for JpegError {}

fn encode_block(w: &mut BitWriter, levels: &[i16; 64], prev_dc: i16) {
    // DC: differential, size category + amplitude.
    let diff = i32::from(levels[ZIGZAG[0]]) - i32::from(prev_dc);
    let size = size_category(diff);
    LUMA_DC.write(w, size as u8);
    write_amplitude(w, diff);
    // AC: run-length of zeros, (run, size) symbol + amplitude.
    let mut run = 0u32;
    for &zz in &ZIGZAG[1..] {
        let v = i32::from(levels[zz]);
        if v == 0 {
            run += 1;
            continue;
        }
        while run >= 16 {
            LUMA_AC.write(w, 0xF0); // ZRL
            run -= 16;
        }
        let size = size_category(v);
        LUMA_AC.write(w, ((run as u8) << 4) | size as u8);
        write_amplitude(w, v);
        run = 0;
    }
    if run > 0 {
        LUMA_AC.write(w, 0x00); // EOB
    }
}

fn decode_block(r: &mut BitReader<'_>, prev_dc: i16) -> Option<[i16; 64]> {
    let mut levels = [0i16; 64];
    let size = u32::from(LUMA_DC.read(r)?);
    let diff = read_amplitude(r, size)?;
    levels[ZIGZAG[0]] = (i32::from(prev_dc) + diff) as i16;
    let mut k = 1usize;
    while k < 64 {
        let sym = LUMA_AC.read(r)?;
        if sym == 0x00 {
            break; // EOB
        }
        let run = usize::from(sym >> 4);
        let size = u32::from(sym & 0xF);
        if sym == 0xF0 {
            k += 16;
            continue;
        }
        k += run;
        if k >= 64 {
            return None;
        }
        levels[ZIGZAG[k]] = read_amplitude(r, size)? as i16;
        k += 1;
    }
    Some(levels)
}

/// Encodes a grayscale image (row-major `pixels`, length
/// `width * height`) at the given IJG quality.
///
/// Dimensions that are not multiples of 8 are edge-padded.
///
/// # Errors
///
/// Returns [`JpegError::DimensionMismatch`] or [`JpegError::EmptyImage`]
/// on malformed input.
pub fn encode_gray(
    width: usize,
    height: usize,
    pixels: &[u8],
    quality: u8,
) -> Result<EncodedImage, JpegError> {
    if width == 0 || height == 0 {
        return Err(JpegError::EmptyImage);
    }
    if pixels.len() != width * height {
        return Err(JpegError::DimensionMismatch {
            expected: width * height,
            got: pixels.len(),
        });
    }
    let table = quant_table(quality);
    let mut w = BitWriter::new();
    let mut prev_dc = 0i16;
    for by in (0..height).step_by(8) {
        for bx in (0..width).step_by(8) {
            // Level-shifted block with edge padding.
            let block: [i32; 64] = std::array::from_fn(|i| {
                let x = (bx + i % 8).min(width - 1);
                let y = (by + i / 8).min(height - 1);
                i32::from(pixels[y * width + x]) - 128
            });
            let levels = quantize(&fdct_2d(&block), &table);
            encode_block(&mut w, &levels, prev_dc);
            prev_dc = levels[ZIGZAG[0]];
        }
    }
    Ok(EncodedImage {
        width,
        height,
        quality,
        bytes: w.finish(),
    })
}

/// Decodes an [`EncodedImage`] back to row-major grayscale pixels.
///
/// # Errors
///
/// Returns [`JpegError::Truncated`] if the entropy segment is invalid.
pub fn decode_gray(img: &EncodedImage) -> Result<Vec<u8>, JpegError> {
    if img.width == 0 || img.height == 0 {
        return Err(JpegError::EmptyImage);
    }
    let table = quant_table(img.quality);
    let mut out = vec![0u8; img.width * img.height];
    let mut r = BitReader::new(&img.bytes);
    let mut prev_dc = 0i16;
    for by in (0..img.height).step_by(8) {
        for bx in (0..img.width).step_by(8) {
            let levels = decode_block(&mut r, prev_dc).ok_or(JpegError::Truncated)?;
            prev_dc = levels[ZIGZAG[0]];
            let samples = idct_2d(&dequantize(&levels, &table));
            for (i, &s) in samples.iter().enumerate() {
                let x = bx + i % 8;
                let y = by + i / 8;
                if x < img.width && y < img.height {
                    out[y * img.width + x] = (s + 128).clamp(0, 255) as u8;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    use axmul_metrics::psnr;

    fn gradient_image(w: usize, h: usize) -> Vec<u8> {
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                let v = 40.0
                    + 80.0 * (x as f64 / w as f64)
                    + 60.0 * (y as f64 / h as f64)
                    + 20.0 * ((x as f64) * 0.7).sin();
                v.clamp(0.0, 255.0) as u8
            })
            .collect()
    }

    #[test]
    fn round_trip_quality_scales_fidelity() {
        let pixels = gradient_image(64, 64);
        let mut last_psnr = 0.0;
        let mut last_size = usize::MAX;
        for quality in [25u8, 50, 75, 95] {
            let enc = encode_gray(64, 64, &pixels, quality).unwrap();
            let dec = decode_gray(&enc).unwrap();
            let p = psnr(&pixels, &dec);
            assert!(p > last_psnr, "quality {quality}: {p:.1} <= {last_psnr:.1}");
            assert!(enc.bytes.len() >= last_size.min(enc.bytes.len()));
            last_psnr = p;
            last_size = enc.bytes.len();
        }
        assert!(
            last_psnr > 38.0,
            "q95 should be high fidelity: {last_psnr:.1}"
        );
    }

    #[test]
    fn smooth_images_compress_well() {
        let pixels = gradient_image(128, 128);
        let enc = encode_gray(128, 128, &pixels, 75).unwrap();
        assert!(
            enc.bytes.len() * 6 < pixels.len(),
            "compressed {} of {}",
            enc.bytes.len(),
            pixels.len()
        );
    }

    #[test]
    fn flat_image_is_tiny_and_exact() {
        let pixels = vec![128u8; 64 * 64];
        let enc = encode_gray(64, 64, &pixels, 75).unwrap();
        assert!(enc.bytes.len() < 64, "{} bytes", enc.bytes.len());
        let dec = decode_gray(&enc).unwrap();
        assert!(psnr(&pixels, &dec) > 50.0);
    }

    #[test]
    fn non_multiple_of_8_dimensions() {
        let pixels = gradient_image(37, 21);
        let enc = encode_gray(37, 21, &pixels, 85).unwrap();
        let dec = decode_gray(&enc).unwrap();
        assert_eq!(dec.len(), 37 * 21);
        assert!(psnr(&pixels, &dec) > 30.0);
    }

    #[test]
    fn dimension_validation() {
        assert!(matches!(
            encode_gray(8, 8, &[0u8; 63], 75),
            Err(JpegError::DimensionMismatch {
                expected: 64,
                got: 63
            })
        ));
        assert!(matches!(
            encode_gray(0, 8, &[], 75),
            Err(JpegError::EmptyImage)
        ));
    }

    #[test]
    fn corrupt_stream_is_rejected_not_panicking() {
        let pixels = gradient_image(16, 16);
        let mut enc = encode_gray(16, 16, &pixels, 75).unwrap();
        enc.bytes.truncate(enc.bytes.len() / 2);
        // Either a clean error or a short-but-valid decode; never panic.
        let _ = decode_gray(&enc);
    }

    #[test]
    fn textured_image_needs_more_bits_than_smooth() {
        let smooth = gradient_image(64, 64);
        let textured: Vec<u8> = (0..64 * 64)
            .map(|i| ((i * 7919 + (i / 64) * 104729) % 256) as u8)
            .collect();
        let e_smooth = encode_gray(64, 64, &smooth, 75).unwrap();
        let e_tex = encode_gray(64, 64, &textured, 75).unwrap();
        assert!(e_tex.bytes.len() > 2 * e_smooth.bytes.len());
    }
}
