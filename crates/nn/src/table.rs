//! MAC backends: how an `i8 × i8 → i32` multiply is actually computed.
//!
//! The engine routes **every** multiply-accumulate through a
//! [`MacBackend`], so swapping the multiplier architecture swaps the
//! arithmetic of the whole network. Two implementations:
//!
//! * [`ScalarMac`] — calls the wrapped [`Multiplier`] per MAC (via the
//!   [`Signed`] magnitude/sign adapter). Slow but definitionally
//!   correct; it is the reference the table path is tested against.
//! * [`ProductTable`] — precomputes all 256×256 signed products once,
//!   then serves each MAC with a single table lookup. This is also the
//!   natural shape for fault injection: a faulty netlist is exhaustively
//!   simulated into a table and then costs nothing extra per MAC.

use axmul_core::{Multiplier, Signed};
use axmul_fabric::compile::CompiledNetlist;
use axmul_fabric::fault::Fault;
use axmul_fabric::Netlist;

use crate::error::NnError;

/// A signed 8-bit multiply backend: the one arithmetic primitive the
/// inference engine consumes.
pub trait MacBackend: Sync {
    /// The (possibly approximate) product of two int8 values.
    fn mul(&self, a: i8, b: i8) -> i32;

    /// Human-readable backend name for reports.
    fn name(&self) -> &str;
}

impl<B: MacBackend + ?Sized> MacBackend for &B {
    fn mul(&self, a: i8, b: i8) -> i32 {
        (**self).mul(a, b)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

fn require_8x8(m: &(impl Multiplier + ?Sized)) -> Result<(), NnError> {
    if m.a_bits() == 8 && m.b_bits() == 8 {
        Ok(())
    } else {
        Err(NnError::Width {
            a_bits: m.a_bits(),
            b_bits: m.b_bits(),
        })
    }
}

/// Per-MAC scalar evaluation of an unsigned 8×8 core through the
/// [`Signed`] adapter. The ground truth for [`ProductTable`].
#[derive(Debug, Clone)]
pub struct ScalarMac<M> {
    signed: Signed<M>,
}

impl<M: Multiplier> ScalarMac<M> {
    /// Wraps an unsigned 8×8 multiplier.
    ///
    /// # Errors
    ///
    /// [`NnError::Width`] unless the core is 8×8.
    pub fn new(inner: M) -> Result<Self, NnError> {
        require_8x8(&inner)?;
        Ok(ScalarMac {
            signed: Signed::new(inner),
        })
    }
}

impl<M: Multiplier + Sync> MacBackend for ScalarMac<M> {
    fn mul(&self, a: i8, b: i8) -> i32 {
        self.signed.multiply_signed(i64::from(a), i64::from(b)) as i32
    }
    fn name(&self) -> &str {
        self.signed.name()
    }
}

/// All 2¹⁶ signed int8 products of a multiplier, precomputed.
///
/// Indexed `table[(a as u8) << 8 | (b as u8)]` — two's-complement bit
/// patterns, so negative operands land in the upper half of each axis.
/// One lookup per MAC regardless of whether the source multiplier was
/// behavioral, a composed DSE configuration, or a gate-level netlist
/// under fault injection.
#[derive(Clone)]
pub struct ProductTable {
    name: String,
    table: Vec<i32>,
}

impl std::fmt::Debug for ProductTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProductTable")
            .field("name", &self.name)
            .field("entries", &self.table.len())
            .finish()
    }
}

impl ProductTable {
    /// Builds the table from an arbitrary signed product function.
    #[must_use]
    pub fn from_fn(name: impl Into<String>, mut f: impl FnMut(i8, i8) -> i32) -> Self {
        let mut table = vec![0i32; 1 << 16];
        for a in i8::MIN..=i8::MAX {
            for b in i8::MIN..=i8::MAX {
                table[Self::index(a, b)] = f(a, b);
            }
        }
        ProductTable {
            name: name.into(),
            table,
        }
    }

    /// Tabulates an unsigned 8×8 [`Multiplier`] through the [`Signed`]
    /// magnitude/sign adapter (the same path [`ScalarMac`] takes, so
    /// the two backends are bit-identical by construction — and by the
    /// crate's property tests).
    ///
    /// # Errors
    ///
    /// [`NnError::Width`] unless the core is 8×8.
    pub fn new(m: &(impl Multiplier + ?Sized)) -> Result<Self, NnError> {
        require_8x8(m)?;
        // Only 129×129 magnitude products are distinct; compute each
        // once and fan the signs out.
        let mut mags = vec![0i64; 129 * 129];
        for am in 0..=128u64 {
            for bm in 0..=128u64 {
                mags[(am * 129 + bm) as usize] = m.multiply(am, bm) as i64;
            }
        }
        let name = format!("signed {}", m.name());
        Ok(Self::from_fn(name, |a, b| {
            let mag = mags[a.unsigned_abs() as usize * 129 + b.unsigned_abs() as usize];
            let p = if (a < 0) != (b < 0) { -mag } else { mag };
            p as i32
        }))
    }

    /// The exact int8 product table.
    #[must_use]
    pub fn exact() -> Self {
        ProductTable::from_fn("exact", |a, b| i32::from(a) * i32::from(b))
    }

    /// Tabulates an unsigned 8×8 multiplier *netlist* with the given
    /// stuck-at faults injected — the bridge between the fabric's fault
    /// model and network-level accuracy. The faults are baked into a
    /// compiled bit-sliced program
    /// ([`CompiledNetlist::compile_with_faults`]) and all 2¹⁶ magnitude
    /// pairs are swept 256 lanes per pass; the signed table then reads
    /// the |a|,|b| ≤ 128 entries it needs.
    ///
    /// # Errors
    ///
    /// [`NnError::Width`] if the netlist is not a 2-input-bus 8×8
    /// multiplier; [`NnError::Fabric`] on simulation failure.
    pub fn from_netlist_with_faults(
        netlist: &Netlist,
        faults: &[Fault],
        name: impl Into<String>,
    ) -> Result<Self, NnError> {
        let buses = netlist.input_buses();
        if buses.len() != 2 || buses[0].1.len() != 8 || buses[1].1.len() != 8 {
            return Err(NnError::Width {
                a_bits: buses.first().map_or(0, |(_, b)| b.len() as u32),
                b_bits: buses.get(1).map_or(0, |(_, b)| b.len() as u32),
            });
        }
        let prog = CompiledNetlist::compile_with_faults(netlist, faults);
        let mut products = vec![0i64; 1 << 16];
        prog.for_each_operand_pair_in(0..1 << 16, |a, b, out| {
            products[((a << 8) | b) as usize] = out[0] as i64;
        })
        .map_err(NnError::Fabric)?;
        Ok(Self::from_fn(name, |a, b| {
            let mag = products
                [((u64::from(a.unsigned_abs()) << 8) | u64::from(b.unsigned_abs())) as usize];
            let p = if (a < 0) != (b < 0) { -mag } else { mag };
            p as i32
        }))
    }

    /// Table index of an operand pair (two's-complement bit patterns).
    #[inline]
    #[must_use]
    pub fn index(a: i8, b: i8) -> usize {
        ((a as u8 as usize) << 8) | (b as u8 as usize)
    }
}

impl MacBackend for ProductTable {
    #[inline]
    fn mul(&self, a: i8, b: i8) -> i32 {
        self.table[Self::index(a, b)]
    }
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_core::behavioral::{Approx4x4, Ca};
    use axmul_core::Exact;

    #[test]
    fn exact_table_is_exact() {
        let t = ProductTable::exact();
        for (a, b) in [(0i8, 0i8), (1, -1), (-128, -128), (127, -128), (53, 77)] {
            assert_eq!(t.mul(a, b), i32::from(a) * i32::from(b), "{a}*{b}");
        }
    }

    #[test]
    fn table_matches_scalar_for_every_int8_pair() {
        let table = ProductTable::new(&Ca::new(8).unwrap()).unwrap();
        let scalar = ScalarMac::new(Ca::new(8).unwrap()).unwrap();
        for a in i8::MIN..=i8::MAX {
            for b in i8::MIN..=i8::MAX {
                assert_eq!(table.mul(a, b), scalar.mul(a, b), "{a}*{b}");
            }
        }
        assert_eq!(table.name(), scalar.name());
    }

    #[test]
    fn rejects_non_8x8_cores() {
        assert_eq!(
            ProductTable::new(&Approx4x4::new()).unwrap_err(),
            NnError::Width {
                a_bits: 4,
                b_bits: 4
            }
        );
        assert!(ScalarMac::new(Exact::new(16, 16)).is_err());
    }

    #[test]
    fn faultless_netlist_table_matches_behavioral() {
        use axmul_core::structural;
        let netlist = structural::ca_netlist(8).unwrap();
        let t = ProductTable::from_netlist_with_faults(&netlist, &[], "ca8").unwrap();
        let r = ProductTable::new(&Ca::new(8).unwrap()).unwrap();
        for a in i8::MIN..=i8::MAX {
            for b in i8::MIN..=i8::MAX {
                assert_eq!(t.mul(a, b), r.mul(a, b), "{a}*{b}");
            }
        }
    }
}
