//! Fixed-point quantization arithmetic.
//!
//! The engine follows the standard symmetric int8 scheme (zero-point
//! 0 everywhere): a real value `x` is represented as `q · s` with `q`
//! an `i8` and `s` a per-tensor scale. A layer accumulates
//! `Σ w_q · x_q` in `i32`; the product scale `s_w · s_x` is converted
//! to the next layer's activation scale by a [`Requant`] — an integer
//! multiply-and-shift approximation of the real ratio, so inference is
//! float-free and bit-deterministic on every platform.

/// Integer requantization: `out ≈ acc · multiplier / 2^shift`,
/// round-half-up, saturated to `i8`.
///
/// Encodes a positive real scale factor as a Q31-style fixed-point
/// constant, the way FPGA and mobile int8 runtimes do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requant {
    /// Fixed-point mantissa in `[2^30, 2^31)`.
    pub multiplier: i32,
    /// Right-shift applied after the widening multiply.
    pub shift: u32,
}

impl Requant {
    /// Encodes a real scale factor `scale ∈ (0, 1e6)`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive, or too large to
    /// leave a rounding shift.
    #[must_use]
    pub fn from_scale(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "requant scale must be positive and finite, got {scale}"
        );
        // Normalize to m ∈ [0.5, 1): scale = m · 2^e.
        let mut m = scale;
        let mut e = 0i32;
        while m < 0.5 {
            m *= 2.0;
            e -= 1;
        }
        while m >= 1.0 {
            m /= 2.0;
            e += 1;
        }
        let mut q = (m * 2f64.powi(31)).round() as i64;
        if q == 1i64 << 31 {
            q >>= 1;
            e += 1;
        }
        let shift = 31 - e;
        assert!(
            (1..=62).contains(&shift),
            "requant scale {scale} out of representable range"
        );
        Requant {
            multiplier: q as i32,
            shift: shift as u32,
        }
    }

    /// Applies the requantization to an `i32` accumulator.
    #[inline]
    #[must_use]
    pub fn apply(self, acc: i32) -> i8 {
        let wide = i64::from(acc) * i64::from(self.multiplier);
        let rounded = (wide + (1i64 << (self.shift - 1))) >> self.shift;
        rounded.clamp(-128, 127) as i8
    }

    /// The real scale this requant approximates.
    #[must_use]
    pub fn scale(self) -> f64 {
        self.multiplier as f64 / 2f64.powi(self.shift as i32)
    }
}

/// Symmetric per-tensor int8 quantization of a float tensor: returns
/// the quantized values and the scale (`maxabs / 127`, or scale 1 for
/// an all-zero tensor).
#[must_use]
pub fn quantize_symmetric(values: &[f64]) -> (Vec<i8>, f64) {
    let maxabs = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if maxabs == 0.0 {
        return (vec![0; values.len()], 1.0);
    }
    let scale = maxabs / 127.0;
    let q = values
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requant_matches_float_reference() {
        for &scale in &[0.5, 0.25, 0.013_7, 1.0 / 3.0, 0.000_61, 1.5, 12.0] {
            let r = Requant::from_scale(scale);
            assert!(
                (r.scale() - scale).abs() / scale < 1e-8,
                "{scale} encoded as {}",
                r.scale()
            );
            for acc in [-50_000, -129, -1, 0, 1, 3, 127, 50_000] {
                let want = (f64::from(acc) * scale).round().clamp(-128.0, 127.0) as i8;
                let got = r.apply(acc);
                assert!(
                    i32::from(want).abs_diff(i32::from(got)) <= 1,
                    "scale {scale} acc {acc}: float {want} vs fixed {got}"
                );
            }
        }
    }

    #[test]
    fn requant_exact_powers_of_two() {
        let r = Requant::from_scale(0.25);
        assert_eq!(r.apply(8), 2);
        assert_eq!(r.apply(10), 3, "2.5 rounds half-up to 3");
        assert_eq!(r.apply(-10), -2, "-2.5 rounds half-up to -2");
        assert_eq!(r.apply(4000), 127, "saturates high");
        assert_eq!(r.apply(-4000), -128, "saturates low");
    }

    #[test]
    fn quantize_symmetric_round_trips() {
        let vals = [0.5, -1.0, 0.25, 0.0];
        let (q, s) = quantize_symmetric(&vals);
        assert_eq!(q[1], -127);
        for (v, qv) in vals.iter().zip(&q) {
            assert!((f64::from(*qv) * s - v).abs() <= s / 2.0 + 1e-12);
        }
        let (qz, sz) = quantize_symmetric(&[0.0, 0.0]);
        assert_eq!((qz, sz), (vec![0, 0], 1.0));
    }
}
