use std::fmt;

use axmul_fabric::FabricError;

/// Errors surfaced by the inference engine.
///
/// Every malformed model or input is reported as a typed error — layer
/// shape validation happens up front in [`crate::Model::validate`], so
/// the MAC inner loops never panic on fixture mistakes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer's parameter buffer disagrees with its declared shape,
    /// or consecutive layers disagree on the activation shape.
    ShapeMismatch {
        /// Which layer (index and kind) failed validation.
        layer: String,
        /// The element count the declared shape requires.
        expected: usize,
        /// The element count actually present.
        got: usize,
    },
    /// An input image does not match the model's declared input size.
    BadInput {
        /// `c * h * w` of the model input.
        expected: usize,
        /// Length of the offending image.
        got: usize,
    },
    /// A multiplier with unsupported operand widths was offered as a
    /// MAC backend (the int8 datapath needs an 8×8 core).
    Width {
        /// First-operand width of the rejected multiplier.
        a_bits: u32,
        /// Second-operand width of the rejected multiplier.
        b_bits: u32,
    },
    /// The model has no layers, or its last layer is not a logits-
    /// producing [`crate::Dense`] (one with `requant: None`).
    NoLogits,
    /// Netlist simulation or characterization failed underneath.
    Fabric(FabricError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch {
                layer,
                expected,
                got,
            } => write!(
                f,
                "shape mismatch in {layer}: expected {expected} elements, got {got}"
            ),
            NnError::BadInput { expected, got } => {
                write!(f, "input image has {got} pixels, model expects {expected}")
            }
            NnError::Width { a_bits, b_bits } => write!(
                f,
                "MAC backend needs an 8x8 multiplier, got {a_bits}x{b_bits}"
            ),
            NnError::NoLogits => write!(
                f,
                "model must end in a Dense layer with requant: None (raw i32 logits)"
            ),
            NnError::Fabric(e) => write!(f, "fabric error: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Fabric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for NnError {
    fn from(e: FabricError) -> Self {
        NnError::Fabric(e)
    }
}
