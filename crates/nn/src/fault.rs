//! Graceful-degradation analysis: stuck-at faults vs. accuracy.
//!
//! Injects random single-stuck-at faults (the `axmul-fabric` fault
//! model) into a gate-level 8×8 multiplier netlist, exhaustively
//! simulates the faulty netlist into a [`ProductTable`], and measures
//! the reference network's top-1 accuracy — evidence for how the
//! accelerator *degrades* rather than fails as hardware defects
//! accumulate.

use axmul_fabric::fault::Fault;
use axmul_fabric::{Driver, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::engine::evaluate;
use crate::error::NnError;
use crate::model::Model;
use crate::table::ProductTable;

/// Accuracy under a given number of simultaneous stuck-at faults,
/// averaged over random fault placements.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPoint {
    /// Number of simultaneous faults injected per trial.
    pub faults: usize,
    /// Independent random placements measured.
    pub trials: usize,
    /// Mean top-1 accuracy across trials.
    pub mean_accuracy: f64,
    /// Worst trial accuracy.
    pub min_accuracy: f64,
}

/// Candidate fault sites of a netlist: every observable non-constant
/// net (same selection rule as `axmul_fabric::fault::fault_coverage`).
#[must_use]
pub fn fault_sites(netlist: &Netlist) -> Vec<NetId> {
    let fanouts = netlist.fanouts();
    netlist
        .drivers()
        .iter()
        .enumerate()
        .filter(|&(i, d)| !matches!(d, Driver::Const(_)) && fanouts[i] > 0)
        .map(|(i, _)| NetId::new(i as u32))
        .collect()
}

/// Sweeps `fault_counts`, injecting that many distinct random stuck-at
/// faults into `netlist` per trial (seeded, deterministic placements),
/// and evaluates `model` on `dataset` through each faulty multiplier.
///
/// # Errors
///
/// Propagates netlist-simulation and inference errors.
pub fn fault_sweep(
    model: &Model,
    dataset: &Dataset,
    netlist: &Netlist,
    fault_counts: &[usize],
    trials: usize,
    seed: u64,
    workers: usize,
) -> Result<Vec<FaultPoint>, NnError> {
    let sites = fault_sites(netlist);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(fault_counts.len());
    for &n in fault_counts {
        let trials_here = if n == 0 { 1 } else { trials.max(1) };
        let mut accs = Vec::with_capacity(trials_here);
        for trial in 0..trials_here {
            let faults = pick_faults(&sites, n, &mut rng);
            let name = format!("{} +{n}sa (trial {trial})", netlist.name());
            let table = ProductTable::from_netlist_with_faults(netlist, &faults, name)?;
            accs.push(evaluate(model, &table, dataset, workers)?.accuracy());
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        let min = accs.iter().fold(f64::INFINITY, |m, &a| m.min(a));
        points.push(FaultPoint {
            faults: n,
            trials: trials_here,
            mean_accuracy: mean,
            min_accuracy: min,
        });
    }
    Ok(points)
}

/// Draws `n` faults on distinct nets with random polarity.
fn pick_faults(sites: &[NetId], n: usize, rng: &mut StdRng) -> Vec<Fault> {
    assert!(n <= sites.len(), "more faults than candidate nets");
    // Partial Fisher–Yates over a scratch index vector.
    let mut idx: Vec<usize> = (0..sites.len()).collect();
    let mut faults = Vec::with_capacity(n);
    for k in 0..n {
        let j = rng.random_range(k..idx.len());
        idx.swap(k, j);
        let net = sites[idx[k]];
        faults.push(if rng.random::<bool>() {
            Fault::sa1(net)
        } else {
            Fault::sa0(net)
        });
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::train::reference_model;
    use axmul_core::structural::ca_netlist;

    #[test]
    fn zero_faults_matches_the_clean_netlist() {
        let nl = ca_netlist(8).unwrap();
        let ds = dataset::generate(16, 3);
        let points = fault_sweep(reference_model(), &ds, &nl, &[0], 3, 99, 1).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].trials, 1, "fault-free needs no averaging");
        let clean = ProductTable::from_netlist_with_faults(&nl, &[], "ca8").unwrap();
        let reference = evaluate(reference_model(), &clean, &ds, 1).unwrap();
        assert_eq!(points[0].mean_accuracy, reference.accuracy());
    }

    #[test]
    fn fault_picks_are_deterministic_and_distinct() {
        let nl = ca_netlist(8).unwrap();
        let sites = fault_sites(&nl);
        assert!(sites.len() > 100, "an 8×8 netlist has plenty of nets");
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let a = pick_faults(&sites, 8, &mut rng_a);
        let b = pick_faults(&sites, 8, &mut rng_b);
        assert_eq!(a, b);
        let mut nets: Vec<_> = a.iter().map(|f| f.net).collect();
        nets.sort();
        nets.dedup();
        assert_eq!(nets.len(), 8, "faults land on distinct nets");
    }
}
