//! The shape-validated layer stack.

use crate::error::NnError;
use crate::layers::{avg_pool, relu, Layer, Shape};
use crate::table::MacBackend;

/// An int8 feed-forward network: an input shape and a layer stack
/// ending in a logits-producing [`Dense`] (one with `requant: None`).
///
/// Construct with [`Model::new`], which validates every parameter
/// buffer against its declared shape and the activation shapes across
/// the whole chain — a mismatched fixture is a typed [`NnError`], never
/// a panic in the MAC loops.
#[derive(Debug, Clone)]
pub struct Model {
    input: Shape,
    layers: Vec<Layer>,
}

impl Model {
    /// Builds and validates a model.
    ///
    /// # Errors
    ///
    /// * [`NnError::ShapeMismatch`] — a weight/bias buffer disagrees
    ///   with its layer's declared dimensions, or a layer cannot accept
    ///   its predecessor's output shape.
    /// * [`NnError::NoLogits`] — empty stack, last layer not a `Dense`
    ///   with `requant: None`, or a logits head in the middle.
    pub fn new(input: Shape, layers: Vec<Layer>) -> Result<Self, NnError> {
        let model = Model { input, layers };
        model.validate()?;
        Ok(model)
    }

    /// Input activation shape.
    #[must_use]
    pub fn input(&self) -> Shape {
        self.input
    }

    /// The layer stack.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of classes (outputs of the final dense head).
    #[must_use]
    pub fn classes(&self) -> usize {
        match self.layers.last() {
            Some(Layer::Dense(d)) => d.out_f,
            _ => 0,
        }
    }

    /// Total int8 multiplies per inference — the budget every MAC
    /// backend pays per sample.
    #[must_use]
    pub fn macs_per_inference(&self) -> usize {
        let mut shape = self.input;
        let mut macs = 0usize;
        for layer in &self.layers {
            match layer {
                Layer::Conv2d(c) => {
                    let out = c.out_shape(shape);
                    macs += c.out_c * c.in_c * c.k * c.k * out.h * out.w;
                    shape = out;
                }
                Layer::Dense(d) => {
                    macs += d.in_f * d.out_f;
                    shape = Shape {
                        c: d.out_f,
                        h: 1,
                        w: 1,
                    };
                }
                Layer::Relu => {}
                Layer::AvgPool2d { k } => {
                    shape = Shape {
                        c: shape.c,
                        h: shape.h / k,
                        w: shape.w / k,
                    };
                }
            }
        }
        macs
    }

    fn validate(&self) -> Result<(), NnError> {
        let mismatch = |layer: String, expected: usize, got: usize| NnError::ShapeMismatch {
            layer,
            expected,
            got,
        };
        if self.layers.is_empty() {
            return Err(NnError::NoLogits);
        }
        let mut shape = self.input;
        for (i, layer) in self.layers.iter().enumerate() {
            let head_allowed = i + 1 == self.layers.len();
            match layer {
                Layer::Conv2d(c) => {
                    let want = c.out_c * c.in_c * c.k * c.k;
                    if c.weights.len() != want {
                        return Err(mismatch(
                            format!("layer {i} (Conv2d weights)"),
                            want,
                            c.weights.len(),
                        ));
                    }
                    if c.bias.len() != c.out_c {
                        return Err(mismatch(
                            format!("layer {i} (Conv2d bias)"),
                            c.out_c,
                            c.bias.len(),
                        ));
                    }
                    if c.in_c != shape.c || c.k == 0 || c.k > shape.h || c.k > shape.w {
                        return Err(mismatch(
                            format!("layer {i} (Conv2d input)"),
                            shape.len(),
                            c.in_c * shape.h * shape.w,
                        ));
                    }
                    shape = c.out_shape(shape);
                }
                Layer::Dense(d) => {
                    if d.weights.len() != d.in_f * d.out_f {
                        return Err(mismatch(
                            format!("layer {i} (Dense weights)"),
                            d.in_f * d.out_f,
                            d.weights.len(),
                        ));
                    }
                    if d.bias.len() != d.out_f {
                        return Err(mismatch(
                            format!("layer {i} (Dense bias)"),
                            d.out_f,
                            d.bias.len(),
                        ));
                    }
                    if d.in_f != shape.len() {
                        return Err(mismatch(
                            format!("layer {i} (Dense input)"),
                            shape.len(),
                            d.in_f,
                        ));
                    }
                    if d.requant.is_none() && !head_allowed {
                        return Err(NnError::NoLogits);
                    }
                    shape = Shape {
                        c: d.out_f,
                        h: 1,
                        w: 1,
                    };
                }
                Layer::Relu => {}
                Layer::AvgPool2d { k } => {
                    if *k == 0 || !shape.h.is_multiple_of(*k) || !shape.w.is_multiple_of(*k) {
                        return Err(mismatch(
                            format!("layer {i} (AvgPool2d window)"),
                            shape.h,
                            *k,
                        ));
                    }
                    shape = Shape {
                        c: shape.c,
                        h: shape.h / k,
                        w: shape.w / k,
                    };
                }
            }
        }
        match self.layers.last() {
            Some(Layer::Dense(d)) if d.requant.is_none() => Ok(()),
            _ => Err(NnError::NoLogits),
        }
    }

    /// Runs one quantized image through the network, returning the raw
    /// `i32` logits of the final dense head.
    ///
    /// # Errors
    ///
    /// [`NnError::BadInput`] if `image.len() != input shape`.
    pub fn logits(&self, backend: &dyn MacBackend, image: &[i8]) -> Result<Vec<i32>, NnError> {
        if image.len() != self.input.len() {
            return Err(NnError::BadInput {
                expected: self.input.len(),
                got: image.len(),
            });
        }
        let mut act = image.to_vec();
        let mut shape = self.input;
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                Layer::Conv2d(c) => {
                    act = c.forward(backend, &act, shape);
                    shape = c.out_shape(shape);
                }
                Layer::Dense(d) => {
                    let acc = d.accumulate(backend, &act);
                    match d.requant {
                        Some(r) => {
                            act = acc.iter().map(|&v| r.apply(v)).collect();
                            shape = Shape {
                                c: d.out_f,
                                h: 1,
                                w: 1,
                            };
                        }
                        None => {
                            debug_assert_eq!(i + 1, self.layers.len());
                            return Ok(acc);
                        }
                    }
                }
                Layer::Relu => relu(&mut act),
                Layer::AvgPool2d { k } => {
                    let (next, ns) = avg_pool(&act, shape, *k);
                    act = next;
                    shape = ns;
                }
            }
        }
        unreachable!("validate() guarantees a logits head")
    }

    /// Top-1 class of one quantized image (ties break to the lowest
    /// class index, so predictions are deterministic).
    ///
    /// # Errors
    ///
    /// Propagates [`Model::logits`] errors.
    pub fn predict(&self, backend: &dyn MacBackend, image: &[i8]) -> Result<usize, NnError> {
        let logits = self.logits(backend, image)?;
        Ok(argmax(&logits))
    }
}

/// Index of the maximum value; first occurrence wins.
#[must_use]
pub fn argmax(logits: &[i32]) -> usize {
    logits
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::quant::Requant;
    use crate::table::ProductTable;

    fn tiny_dense(weights: Vec<i8>) -> Result<Model, NnError> {
        Model::new(
            Shape { c: 1, h: 1, w: 2 },
            vec![Layer::Dense(Dense {
                in_f: 2,
                out_f: 2,
                weights,
                bias: vec![0, 0],
                requant: None,
            })],
        )
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[3, 7, 7, 1]), 1);
        assert_eq!(argmax(&[-1]), 0);
    }

    #[test]
    fn mismatched_weight_shape_is_a_typed_error() {
        let err = tiny_dense(vec![1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            NnError::ShapeMismatch {
                layer: "layer 0 (Dense weights)".into(),
                expected: 4,
                got: 3
            }
        );
    }

    #[test]
    fn logits_and_predict_run_exactly() {
        let m = tiny_dense(vec![1, 0, 0, 2]).unwrap();
        let exact = ProductTable::exact();
        assert_eq!(m.logits(&exact, &[5, 3]).unwrap(), vec![5, 6]);
        assert_eq!(m.predict(&exact, &[5, 3]).unwrap(), 1);
        assert_eq!(
            m.logits(&exact, &[1]).unwrap_err(),
            NnError::BadInput {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn mid_stack_logits_head_is_rejected() {
        let err = Model::new(
            Shape { c: 1, h: 1, w: 1 },
            vec![
                Layer::Dense(Dense {
                    in_f: 1,
                    out_f: 1,
                    weights: vec![1],
                    bias: vec![0],
                    requant: None,
                }),
                Layer::Relu,
            ],
        )
        .unwrap_err();
        assert_eq!(err, NnError::NoLogits);
    }

    #[test]
    fn head_requant_must_be_none() {
        let err = Model::new(
            Shape { c: 1, h: 1, w: 1 },
            vec![Layer::Dense(Dense {
                in_f: 1,
                out_f: 1,
                weights: vec![1],
                bias: vec![0],
                requant: Some(Requant::from_scale(0.5)),
            })],
        )
        .unwrap_err();
        assert_eq!(err, NnError::NoLogits);
    }
}
