//! Self-contained synthetic classification dataset.
//!
//! The container that builds this repo is offline, so the workload
//! ships its own data: 8×8 grayscale textures in four classes —
//! horizontal stripes, vertical stripes, checkerboard, and diagonal
//! stripes — with per-image random contrast, phase and pixel noise.
//! Everything derives from the workspace's deterministic [`StdRng`],
//! so two builds of the crate see byte-identical datasets (and hence
//! byte-identical reference weights and accuracies).
//!
//! The texture classes are linearly separable from oriented-edge
//! features but the noise margins are tight enough that multiplier
//! approximation error visibly moves top-1 accuracy — which is the
//! whole point of the harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length (images are `SIDE × SIDE` grayscale).
pub const SIDE: usize = 8;

/// Number of texture classes.
pub const CLASSES: usize = 4;

/// Human-readable class names, indexed by label.
pub const CLASS_NAMES: [&str; CLASSES] = ["h-stripes", "v-stripes", "checker", "diagonal"];

/// A labeled set of `SIDE×SIDE` grayscale images.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Row-major pixel buffers, each `SIDE * SIDE` long.
    pub images: Vec<Vec<u8>>,
    /// Class label per image, in `0..CLASSES`.
    pub labels: Vec<u8>,
}

impl Dataset {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True for a dataset with no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

/// Generates `n` images, cycling the class label, from the given seed.
#[must_use]
pub fn generate(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = (i % CLASSES) as u8;
        images.push(texture(label, &mut rng));
        labels.push(label);
    }
    Dataset { images, labels }
}

/// The fixed training split (512 samples).
#[must_use]
pub fn train_set() -> Dataset {
    generate(512, 0xDAC1_8A01)
}

/// The fixed held-out test split (256 samples).
#[must_use]
pub fn test_set() -> Dataset {
    generate(256, 0xDAC1_8B02)
}

fn texture(label: u8, rng: &mut StdRng) -> Vec<u8> {
    let low = rng.random_range(30u32..=90) as i32;
    let high = rng.random_range(150u32..=225) as i32;
    let phase = rng.random_range(0u32..4) as usize;
    let mut img = Vec::with_capacity(SIDE * SIDE);
    for y in 0..SIDE {
        for x in 0..SIDE {
            let bright = match label {
                0 => (y + phase) % 4 < 2,
                1 => (x + phase) % 4 < 2,
                2 => ((x / 2) + (y / 2) + phase).is_multiple_of(2),
                _ => (x + y + phase) % 4 < 2,
            };
            let base = if bright { high } else { low };
            let noise = rng.random_range(0u32..=40) as i32 - 20;
            img.push((base + noise).clamp(0, 255) as u8);
        }
    }
    img
}

/// Centers a `u8` pixel to the int8 activation domain (`pixel − 128`,
/// scale 1/128, zero-point 0).
#[inline]
#[must_use]
pub fn quantize_pixel(p: u8) -> i8 {
    (i32::from(p) - 128) as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(64, 7);
        let b = generate(64, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        let c = generate(64, 8);
        assert_ne!(a.images, c.images, "different seed, different data");
    }

    #[test]
    fn splits_have_expected_shape() {
        let train = train_set();
        let test = test_set();
        assert_eq!(train.len(), 512);
        assert_eq!(test.len(), 256);
        for ds in [&train, &test] {
            assert!(ds.images.iter().all(|i| i.len() == SIDE * SIDE));
            assert!(ds.labels.iter().all(|&l| (l as usize) < CLASSES));
        }
        // Balanced classes.
        for class in 0..CLASSES as u8 {
            assert_eq!(
                test.labels.iter().filter(|&&l| l == class).count(),
                test.len() / CLASSES
            );
        }
        // Train and test must not share a seed.
        assert_ne!(train.images[0], test.images[0]);
    }

    #[test]
    fn pixel_quantization_is_centered() {
        assert_eq!(quantize_pixel(0), -128);
        assert_eq!(quantize_pixel(128), 0);
        assert_eq!(quantize_pixel(255), 127);
    }
}
