//! # axmul-nn
//!
//! A quantized (int8 × int8 → i32) neural-network inference engine in
//! which **every multiply routes through a pluggable
//! [`axmul_core::Multiplier`]** — the paper's target workload class
//! ("FPGA-based hardware accelerators") made measurable: swap the
//! multiplier architecture, read off the top-1 accuracy.
//!
//! ## Pieces
//!
//! * [`Model`] / [`Layer`] — shape-validated layer stack: conv2d (via
//!   im2col + GEMM), dense, ReLU, average-pool, argmax readout.
//! * [`MacBackend`] — the `i8 × i8` primitive. [`ScalarMac`] calls the
//!   multiplier per MAC; [`ProductTable`] precomputes all 256×256
//!   signed products (bit-identical, property-tested) so behavioral,
//!   DSE-composed and even fault-injected gate-level multipliers all
//!   cost one lookup per MAC.
//! * [`dataset`] / [`reference_model`] — a self-contained synthetic
//!   texture-classification task and deterministically trained int8
//!   reference weights (offline container: no downloads, no clocks).
//! * [`infer_batch`] / [`evaluate`] — sharded `std::thread::scope`
//!   batch inference, bit-deterministic across worker counts.
//! * [`accuracy_search`] — design-space exploration over recursive 8×8
//!   configurations under an accuracy-floor constraint, reusing
//!   `axmul-dse`'s characterization cache for LUT/EDP costs.
//! * [`fault_sweep`] — stuck-at faults injected into a gate-level
//!   multiplier netlist, reported as accuracy degradation.
//!
//! ## Quick example
//!
//! ```
//! use axmul_core::behavioral::Ca;
//! use axmul_nn::{evaluate, reference_model, test_set, ProductTable};
//!
//! let model = reference_model();
//! let test = test_set();
//! let exact = evaluate(model, &ProductTable::exact(), &test, 2)?;
//! let ca = ProductTable::new(&Ca::new(8)?)?;
//! let approx = evaluate(model, &ca, &test, 2)?;
//! assert!(exact.accuracy() > 0.9);
//! assert!(approx.accuracy() > 0.5); // degraded, not destroyed
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
mod dse;
mod engine;
mod error;
mod fault;
mod layers;
mod model;
mod quant;
mod table;
mod train;

pub use dataset::{test_set, train_set, Dataset};
pub use dse::{accuracy_search, baseline_config, quick_candidates, AccuracyPoint, AccuracySearch};
pub use engine::{evaluate, infer_batch, Evaluation};
pub use error::NnError;
pub use fault::{fault_sites, fault_sweep, FaultPoint};
pub use layers::{Conv2d, Dense, Layer, Shape};
pub use model::{argmax, Model};
pub use quant::{quantize_symmetric, Requant};
pub use table::{MacBackend, ProductTable, ScalarMac};
pub use train::reference_model;
