//! Layer types and their integer forward passes.
//!
//! Activations travel as `i8` tensors in CHW order; every product of
//! two `i8` values goes through the [`MacBackend`], accumulating in
//! `i32`. Convolution is lowered to an explicit im2col buffer followed
//! by the same GEMM kernel the dense layers use, so there is exactly
//! one MAC inner loop in the crate.

use crate::quant::Requant;
use crate::table::MacBackend;

/// Activation tensor shape (channels, height, width). Dense layers see
/// the flattened `c*h*w` vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Channels.
    pub c: usize,
    /// Rows.
    pub h: usize,
    /// Columns.
    pub w: usize,
}

impl Shape {
    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// True when any dimension is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A 2-D convolution (stride 1, valid padding) over CHW activations,
/// evaluated via im2col + GEMM.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Input channels.
    pub in_c: usize,
    /// Output channels (filters).
    pub out_c: usize,
    /// Square kernel side.
    pub k: usize,
    /// Filter weights, `[out_c][in_c][k][k]` row-major.
    pub weights: Vec<i8>,
    /// Per-filter bias, added to the `i32` accumulator.
    pub bias: Vec<i32>,
    /// Accumulator→activation requantization.
    pub requant: Requant,
}

/// A fully-connected layer. `requant: None` marks the network head: it
/// emits raw `i32` logits instead of an `i8` activation.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Input features.
    pub in_f: usize,
    /// Output features.
    pub out_f: usize,
    /// Weights, `[out_f][in_f]` row-major.
    pub weights: Vec<i8>,
    /// Per-output bias, added to the `i32` accumulator.
    pub bias: Vec<i32>,
    /// Accumulator→activation requantization; `None` → raw logits.
    pub requant: Option<Requant>,
}

/// One layer of a [`crate::Model`].
#[derive(Debug, Clone)]
pub enum Layer {
    /// Convolution.
    Conv2d(Conv2d),
    /// Fully connected.
    Dense(Dense),
    /// Elementwise `max(x, 0)`.
    Relu,
    /// Non-overlapping `k×k` average pooling (round-half-up).
    AvgPool2d {
        /// Pooling window side; must divide the activation height and
        /// width exactly.
        k: usize,
    },
}

/// `out[m][n] = Σ_k a[m][k] · b[k][n]` with every product routed
/// through the backend. `a` is `m×kk` row-major, `b` is `kk×n`
/// row-major, output is `m×n` row-major `i32`.
pub(crate) fn gemm(
    backend: &dyn MacBackend,
    a: &[i8],
    b: &[i8],
    m: usize,
    kk: usize,
    n: usize,
) -> Vec<i32> {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(b.len(), kk * n);
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let row = &a[i * kk..(i + 1) * kk];
        for j in 0..n {
            let mut acc = 0i32;
            for (k, &av) in row.iter().enumerate() {
                acc = acc.wrapping_add(backend.mul(av, b[k * n + j]));
            }
            out[i * n + j] = acc;
        }
    }
    out
}

impl Conv2d {
    /// Output shape for a given input shape.
    pub(crate) fn out_shape(&self, input: Shape) -> Shape {
        Shape {
            c: self.out_c,
            h: input.h + 1 - self.k,
            w: input.w + 1 - self.k,
        }
    }

    /// Lowers the input into the im2col matrix: `in_c·k·k` rows by
    /// `out_h·out_w` columns, one column per output position.
    pub(crate) fn im2col(&self, input: &[i8], shape: Shape) -> Vec<i8> {
        let out = self.out_shape(shape);
        let (oh, ow) = (out.h, out.w);
        let kdim = self.in_c * self.k * self.k;
        let mut cols = vec![0i8; kdim * oh * ow];
        for c in 0..self.in_c {
            for ky in 0..self.k {
                for kx in 0..self.k {
                    let row = (c * self.k + ky) * self.k + kx;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let px = input[(c * shape.h + oy + ky) * shape.w + ox + kx];
                            cols[row * (oh * ow) + oy * ow + ox] = px;
                        }
                    }
                }
            }
        }
        cols
    }

    /// Forward pass: im2col, GEMM, bias, requantize.
    pub(crate) fn forward(&self, backend: &dyn MacBackend, input: &[i8], shape: Shape) -> Vec<i8> {
        let out = self.out_shape(shape);
        let kdim = self.in_c * self.k * self.k;
        let cols = self.im2col(input, shape);
        let acc = gemm(
            backend,
            &self.weights,
            &cols,
            self.out_c,
            kdim,
            out.h * out.w,
        );
        acc.iter()
            .enumerate()
            .map(|(i, &v)| {
                self.requant
                    .apply(v.wrapping_add(self.bias[i / (out.h * out.w)]))
            })
            .collect()
    }
}

impl Dense {
    /// Forward pass to the `i32` accumulator vector (bias applied,
    /// requantization not yet).
    pub(crate) fn accumulate(&self, backend: &dyn MacBackend, input: &[i8]) -> Vec<i32> {
        let acc = gemm(backend, &self.weights, input, self.out_f, self.in_f, 1);
        acc.iter()
            .zip(&self.bias)
            .map(|(&v, &b)| v.wrapping_add(b))
            .collect()
    }
}

/// Elementwise ReLU.
pub(crate) fn relu(x: &mut [i8]) {
    for v in x {
        *v = (*v).max(0);
    }
}

/// Non-overlapping k×k average pooling per channel, round-half-up.
pub(crate) fn avg_pool(input: &[i8], shape: Shape, k: usize) -> (Vec<i8>, Shape) {
    let out = Shape {
        c: shape.c,
        h: shape.h / k,
        w: shape.w / k,
    };
    let mut data = vec![0i8; out.len()];
    let window = (k * k) as i32;
    for c in 0..out.c {
        for oy in 0..out.h {
            for ox in 0..out.w {
                let mut sum = 0i32;
                for dy in 0..k {
                    for dx in 0..k {
                        sum +=
                            i32::from(input[(c * shape.h + oy * k + dy) * shape.w + ox * k + dx]);
                    }
                }
                data[(c * out.h + oy) * out.w + ox] = (sum + window / 2).div_euclid(window) as i8;
            }
        }
    }
    (data, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ProductTable;

    #[test]
    fn gemm_exact_small() {
        let exact = ProductTable::exact();
        // [1 2; 3 4] × [5; 6] = [17; 39]
        let a = [1i8, 2, 3, 4];
        let b = [5i8, 6];
        assert_eq!(gemm(&exact, &a, &b, 2, 2, 1), vec![17, 39]);
    }

    #[test]
    fn im2col_identity_kernel() {
        let conv = Conv2d {
            in_c: 1,
            out_c: 1,
            k: 1,
            weights: vec![1],
            bias: vec![0],
            requant: Requant::from_scale(1.0),
        };
        let shape = Shape { c: 1, h: 2, w: 2 };
        let input = [1i8, -2, 3, -4];
        assert_eq!(conv.im2col(&input, shape), vec![1, -2, 3, -4]);
        let out = conv.forward(&ProductTable::exact(), &input, shape);
        assert_eq!(out, vec![1, -2, 3, -4]);
    }

    #[test]
    fn conv_sums_window() {
        // 3×3 all-ones kernel over a 3×3 all-twos image → single output 18.
        let conv = Conv2d {
            in_c: 1,
            out_c: 1,
            k: 3,
            weights: vec![1; 9],
            bias: vec![4],
            requant: Requant::from_scale(1.0),
        };
        let shape = Shape { c: 1, h: 3, w: 3 };
        let out = conv.forward(&ProductTable::exact(), &[2i8; 9], shape);
        assert_eq!(out, vec![22]);
    }

    #[test]
    fn avg_pool_rounds_half_up() {
        let shape = Shape { c: 1, h: 2, w: 2 };
        let (out, os) = avg_pool(&[1, 2, 2, 1], shape, 2);
        assert_eq!(os, Shape { c: 1, h: 1, w: 1 });
        assert_eq!(out, vec![2], "6/4 = 1.5 rounds to 2");
        let (neg, _) = avg_pool(&[-1, -2, -2, -1], shape, 2);
        assert_eq!(neg, vec![-1], "-1.5 rounds half-up to -1");
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut x = [-5i8, 0, 7, -128, 127];
        relu(&mut x);
        assert_eq!(x, [0, 0, 7, 0, 127]);
    }
}
