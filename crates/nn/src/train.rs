//! In-repo deterministic training of the reference network.
//!
//! The container is offline, so there are no downloaded checkpoints:
//! the reference weights are *derived* — a small float network is
//! trained here, deterministically (seeded init, fixed sample order,
//! pure-f64 arithmetic, no threads), and then quantized to the int8
//! [`Model`] the engine runs. Every build of the crate produces the
//! same weights and therefore the same reference accuracy.
//!
//! Architecture (2096 MACs per inference):
//!
//! ```text
//! 8×8 input ─ Conv2d 4@3×3 (fixed filter bank) ─ ReLU ─ AvgPool 2×2
//!          ─ Dense 36→20 ─ ReLU ─ Dense 20→4 ─ argmax
//! ```
//!
//! The convolution filters are a fixed oriented-edge bank (the task is
//! texture orientation, so hand-chosen filters are both sufficient and
//! cheap); only the dense head is trained, by plain SGD on softmax
//! cross-entropy. Features are precomputed once per training image.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{train_set, CLASSES, SIDE};
use crate::layers::{Conv2d, Dense, Layer, Shape};
use crate::model::Model;
use crate::quant::{quantize_symmetric, Requant};

/// The fixed convolution filter bank: horizontal edge, vertical edge,
/// center-surround, and diagonal correlation — one oriented detector
/// per texture class.
const FILTERS: [[f64; 9]; 4] = [
    [0.5, 0.5, 0.5, 0.0, 0.0, 0.0, -0.5, -0.5, -0.5],
    [0.5, 0.0, -0.5, 0.5, 0.0, -0.5, 0.5, 0.0, -0.5],
    [
        -0.25,
        -0.25,
        -0.25,
        -0.25,
        2.0 * 0.25,
        -0.25,
        -0.25,
        -0.25,
        -0.25,
    ],
    [0.5, -0.25, -0.25, -0.25, 0.5, -0.25, -0.25, -0.25, 0.5],
];

const CONV_OUT: usize = SIDE - 2; // 3×3 valid convolution: 6×6
const POOLED: usize = CONV_OUT / 2; // 2×2 average pooling: 3×3
const FEATURES: usize = FILTERS.len() * POOLED * POOLED; // 36
const HIDDEN: usize = 20;
const EPOCHS: usize = 40;
const LEARNING_RATE: f64 = 0.05;
const SEED: u64 = 0xDAC1_8C03;

struct FloatHead {
    w1: Vec<f64>, // [HIDDEN][FEATURES]
    b1: Vec<f64>,
    w2: Vec<f64>, // [CLASSES][HIDDEN]
    b2: Vec<f64>,
}

/// Float feature extractor: conv with the fixed bank, ReLU, 2×2
/// average pool. Mirrors the quantized pipeline up to rounding.
fn features(image: &[u8]) -> Vec<f64> {
    let x: Vec<f64> = image
        .iter()
        .map(|&p| f64::from(i32::from(p) - 128) / 128.0)
        .collect();
    let mut feats = vec![0.0; FEATURES];
    for (f, filter) in FILTERS.iter().enumerate() {
        let mut conv = [0.0f64; CONV_OUT * CONV_OUT];
        for oy in 0..CONV_OUT {
            for ox in 0..CONV_OUT {
                let mut acc = 0.0;
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += filter[ky * 3 + kx] * x[(oy + ky) * SIDE + ox + kx];
                    }
                }
                conv[oy * CONV_OUT + ox] = acc.max(0.0);
            }
        }
        for py in 0..POOLED {
            for px in 0..POOLED {
                let sum = conv[(2 * py) * CONV_OUT + 2 * px]
                    + conv[(2 * py) * CONV_OUT + 2 * px + 1]
                    + conv[(2 * py + 1) * CONV_OUT + 2 * px]
                    + conv[(2 * py + 1) * CONV_OUT + 2 * px + 1];
                feats[(f * POOLED + py) * POOLED + px] = sum / 4.0;
            }
        }
    }
    feats
}

/// Pre-ReLU float convolution outputs, for activation calibration.
fn conv_preact_maxabs(image: &[u8]) -> f64 {
    let x: Vec<f64> = image
        .iter()
        .map(|&p| f64::from(i32::from(p) - 128) / 128.0)
        .collect();
    let mut maxabs = 0.0f64;
    for filter in &FILTERS {
        for oy in 0..CONV_OUT {
            for ox in 0..CONV_OUT {
                let mut acc = 0.0;
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += filter[ky * 3 + kx] * x[(oy + ky) * SIDE + ox + kx];
                    }
                }
                maxabs = maxabs.max(acc.abs());
            }
        }
    }
    maxabs
}

fn train_head(feats: &[Vec<f64>], labels: &[u8]) -> FloatHead {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut uniform = |n: usize, fan_in: usize| -> Vec<f64> {
        let bound = 1.0 / (fan_in as f64).sqrt();
        (0..n)
            .map(|_| (rng.random::<f64>() * 2.0 - 1.0) * bound)
            .collect()
    };
    let mut head = FloatHead {
        w1: uniform(HIDDEN * FEATURES, FEATURES),
        b1: vec![0.0; HIDDEN],
        w2: uniform(CLASSES * HIDDEN, HIDDEN),
        b2: vec![0.0; CLASSES],
    };
    for _ in 0..EPOCHS {
        for (f, &label) in feats.iter().zip(labels) {
            // Forward.
            let mut h = [0.0; HIDDEN];
            for (i, hv) in h.iter_mut().enumerate() {
                let mut acc = head.b1[i];
                for (j, &fv) in f.iter().enumerate() {
                    acc += head.w1[i * FEATURES + j] * fv;
                }
                *hv = acc.max(0.0);
            }
            let mut logits = [0.0; CLASSES];
            for (i, lv) in logits.iter_mut().enumerate() {
                let mut acc = head.b2[i];
                for (j, &hv) in h.iter().enumerate() {
                    acc += head.w2[i * HIDDEN + j] * hv;
                }
                *lv = acc;
            }
            // Softmax cross-entropy gradient.
            let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
            let sum: f64 = exps.iter().sum();
            let mut dlogits: Vec<f64> = exps.iter().map(|&e| e / sum).collect();
            dlogits[label as usize] -= 1.0;
            // Backprop into the head.
            let mut dh = [0.0; HIDDEN];
            for (i, &dl) in dlogits.iter().enumerate() {
                for j in 0..HIDDEN {
                    dh[j] += dl * head.w2[i * HIDDEN + j];
                    head.w2[i * HIDDEN + j] -= LEARNING_RATE * dl * h[j];
                }
                head.b2[i] -= LEARNING_RATE * dl;
            }
            for (j, dv) in dh.iter_mut().enumerate() {
                if h[j] <= 0.0 {
                    *dv = 0.0;
                }
            }
            for (i, &dhi) in dh.iter().enumerate() {
                for (j, &fv) in f.iter().enumerate() {
                    head.w1[i * FEATURES + j] -= LEARNING_RATE * dhi * fv;
                }
                head.b1[i] -= LEARNING_RATE * dhi;
            }
        }
    }
    head
}

fn dense1_preact_maxabs(head: &FloatHead, feats: &[Vec<f64>]) -> f64 {
    let mut maxabs = 0.0f64;
    for f in feats {
        for i in 0..HIDDEN {
            let mut acc = head.b1[i];
            for (j, &fv) in f.iter().enumerate() {
                acc += head.w1[i * FEATURES + j] * fv;
            }
            maxabs = maxabs.max(acc.abs());
        }
    }
    maxabs
}

fn build_model() -> Model {
    let train = train_set();
    let feats: Vec<Vec<f64>> = train.images.iter().map(|i| features(i)).collect();
    let head = train_head(&feats, &train.labels);

    // Activation scales, calibrated on the training split.
    let s0 = 1.0 / 128.0; // input: pixel − 128
    let cap1 = train
        .images
        .iter()
        .map(|i| conv_preact_maxabs(i))
        .fold(0.0f64, f64::max);
    let s1 = cap1 / 127.0;
    let cap2 = dense1_preact_maxabs(&head, &feats);
    let s2 = cap2 / 127.0;

    // Conv: fixed bank, no bias.
    let flat_filters: Vec<f64> = FILTERS.iter().flatten().copied().collect();
    let (wq0, sw0) = quantize_symmetric(&flat_filters);
    let conv = Conv2d {
        in_c: 1,
        out_c: FILTERS.len(),
        k: 3,
        weights: wq0,
        bias: vec![0; FILTERS.len()],
        requant: Requant::from_scale(s0 * sw0 / s1),
    };

    // Dense 36→20. The float model pools post-ReLU activations by /4;
    // the quantized pipeline pools the *same-scale* int8 activations,
    // so the feature scale entering dense1 is still s1.
    let (wq1, sw1) = quantize_symmetric(&head.w1);
    let dense1 = Dense {
        in_f: FEATURES,
        out_f: HIDDEN,
        weights: wq1,
        bias: head
            .b1
            .iter()
            .map(|&b| (b / (s1 * sw1)).round() as i32)
            .collect(),
        requant: Some(Requant::from_scale(s1 * sw1 / s2)),
    };

    // Dense 20→4 head: raw i32 logits (argmax is scale-invariant).
    let (wq2, sw2) = quantize_symmetric(&head.w2);
    let dense2 = Dense {
        in_f: HIDDEN,
        out_f: CLASSES,
        weights: wq2,
        bias: head
            .b2
            .iter()
            .map(|&b| (b / (s2 * sw2)).round() as i32)
            .collect(),
        requant: None,
    };

    Model::new(
        Shape {
            c: 1,
            h: SIDE,
            w: SIDE,
        },
        vec![
            Layer::Conv2d(conv),
            Layer::Relu,
            Layer::AvgPool2d { k: 2 },
            Layer::Dense(dense1),
            Layer::Relu,
            Layer::Dense(dense2),
        ],
    )
    .expect("reference architecture is statically consistent")
}

/// The reference int8 model: deterministically trained on
/// [`train_set`], quantized, and cached per process.
pub fn reference_model() -> &'static Model {
    static MODEL: OnceLock<Model> = OnceLock::new();
    MODEL.get_or_init(build_model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::table::ProductTable;

    #[test]
    fn reference_model_shape() {
        let m = reference_model();
        assert_eq!(m.classes(), CLASSES);
        assert_eq!(m.macs_per_inference(), 1296 + 720 + 80);
    }

    #[test]
    fn reference_model_learns_the_task() {
        let m = reference_model();
        let exact = ProductTable::exact();
        let test = dataset::test_set();
        let mut correct = 0;
        for (img, &label) in test.images.iter().zip(&test.labels) {
            let q: Vec<i8> = img.iter().map(|&p| dataset::quantize_pixel(p)).collect();
            if m.predict(&exact, &q).unwrap() == label as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(
            acc >= 0.9,
            "reference model should solve the synthetic task, got {acc}"
        );
    }
}
