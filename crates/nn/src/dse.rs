//! Accuracy-driven design-space exploration.
//!
//! `axmul-dse` searches recursive 8×8 configurations against *generic*
//! error metrics; this bridge closes the loop the AMG line of work
//! argues for — selecting multipliers by **application-level quality**.
//! Every candidate is characterized once through the shared
//! [`CharCache`] (netlist, LUTs, EDP, error stats — including the new
//! RMSE field), its exact value table is lowered to a [`ProductTable`],
//! and the reference network's top-1 accuracy becomes the constraint:
//! *find the cheapest configuration whose accuracy stays above a floor
//! relative to the all-exact baseline.*

use std::sync::Mutex;

use axmul_core::behavioral::Summation;
use axmul_dse::{CharCache, Config, Leaf};
use axmul_fabric::cost::Characterizer;

use crate::dataset::Dataset;
use crate::engine::evaluate;
use crate::error::NnError;
use crate::model::Model;
use crate::table::ProductTable;

/// One explored configuration: hardware cost from the DSE cache,
/// accuracy from the inference engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPoint {
    /// Canonical configuration key (e.g. `(a A A A X)`).
    pub key: String,
    /// LUT count of the assembled 8×8 netlist.
    pub luts: u32,
    /// Energy-delay product of the netlist.
    pub edp: f64,
    /// Multiplier-level RMSE over the full 8×8 operand space.
    pub rmse: f64,
    /// Top-1 accuracy of the reference network with this multiplier.
    pub accuracy: f64,
}

/// Full result of an accuracy-floor search.
#[derive(Debug, Clone)]
pub struct AccuracySearch {
    /// The all-exact `(a X X X X)` baseline.
    pub baseline: AccuracyPoint,
    /// Absolute accuracy floor applied (`floor_frac · baseline`).
    pub floor: f64,
    /// Every explored point, sorted by LUTs then accuracy (descending).
    pub points: Vec<AccuracyPoint>,
    /// Cheapest point with `accuracy ≥ floor` and strictly fewer LUTs
    /// than the baseline, if any.
    pub best: Option<AccuracyPoint>,
}

/// The all-exact 8×8 recursive baseline configuration.
#[must_use]
pub fn baseline_config() -> Config {
    Config::uniform(Config::Leaf(Leaf::Exact), Summation::Accurate)
}

/// A reduced, structurally diverse candidate set for smoke runs: every
/// homogeneous leaf/summation combination. Includes the paper's
/// approx-Ca `(a A A A A)` and approx-Cc `(c A A A A)` by construction.
#[must_use]
pub fn quick_candidates() -> Vec<Config> {
    let mut configs = Vec::new();
    for summation in [Summation::Accurate, Summation::CarryFree] {
        for leaf in Leaf::ALL {
            configs.push(Config::uniform(Config::Leaf(leaf), summation));
        }
    }
    configs
}

/// Searches `configs` (default: the full 1250-configuration 8×8
/// enumeration) for the cheapest multiplier keeping the network at
/// `floor_frac` of baseline accuracy, evaluating candidates across
/// `workers` threads.
///
/// # Errors
///
/// Propagates characterization ([`NnError::Fabric`]) and inference
/// errors.
pub fn accuracy_search(
    model: &Model,
    dataset: &Dataset,
    floor_frac: f64,
    workers: usize,
    configs: Option<Vec<Config>>,
) -> Result<AccuracySearch, NnError> {
    let cache = CharCache::new(Characterizer::virtex7());
    let configs = configs.unwrap_or_else(|| Config::enumerate(8));

    let baseline = measure(&cache, model, dataset, &baseline_config())?;
    let floor = floor_frac * baseline.accuracy;

    let workers = workers.max(1).min(configs.len().max(1));
    let results: Vec<Mutex<Option<Result<AccuracyPoint, NnError>>>> =
        configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (cache, results, configs) = (&cache, &results, &configs);
            scope.spawn(move || {
                for (i, cfg) in configs.iter().enumerate().skip(w).step_by(workers) {
                    *results[i].lock().unwrap() = Some(measure(cache, model, dataset, cfg));
                }
            });
        }
    });

    let mut points = Vec::with_capacity(configs.len());
    for slot in results {
        match slot.into_inner().unwrap() {
            Some(Ok(p)) => points.push(p),
            Some(Err(e)) => return Err(e),
            None => unreachable!("every shard slot is written"),
        }
    }
    points.sort_by(|a, b| {
        a.luts
            .cmp(&b.luts)
            .then(b.accuracy.total_cmp(&a.accuracy))
            .then(a.key.cmp(&b.key))
    });
    let best = points
        .iter()
        .find(|p| p.accuracy >= floor && p.luts < baseline.luts)
        .cloned();
    Ok(AccuracySearch {
        baseline,
        floor,
        points,
        best,
    })
}

fn measure(
    cache: &CharCache,
    model: &Model,
    dataset: &Dataset,
    cfg: &Config,
) -> Result<AccuracyPoint, NnError> {
    let block = cache.characterize(cfg)?;
    let table = ProductTable::new(&block.multiplier())?;
    // Candidates already fan out across threads; evaluate serially.
    let eval = evaluate(model, &table, dataset, 1)?;
    Ok(AccuracyPoint {
        key: block.key.clone(),
        luts: block.cost.area.luts as u32,
        edp: block.cost.edp,
        rmse: block.stats.rmse,
        accuracy: eval.accuracy(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::train::reference_model;

    #[test]
    fn quick_candidates_are_unique_8x8() {
        let configs = quick_candidates();
        assert!(configs.len() >= 10);
        for cfg in &configs {
            assert_eq!(cfg.bits(), 8, "{}", cfg.key());
        }
    }

    #[test]
    fn quick_search_finds_a_cheaper_config() {
        // A 64-sample subset keeps this tractable under `cargo test`;
        // the full dataset/enumeration runs in `repro nn`.
        let ds = dataset::generate(64, 0xBEEF);
        let search =
            accuracy_search(reference_model(), &ds, 0.95, 2, Some(quick_candidates())).unwrap();
        assert_eq!(search.baseline.key, "(a X X X X)");
        assert!(search.baseline.accuracy > 0.85);
        assert_eq!(search.points.len(), quick_candidates().len());
        let best = search.best.as_ref().expect("paper's configs beat exact");
        assert!(best.luts < search.baseline.luts);
        assert!(best.accuracy >= search.floor);
    }
}
