//! Batch inference: sharded workers, deterministic results.
//!
//! Follows the `axmul-dse` worker-pool pattern: `std::thread::scope`,
//! round-robin sharding (`skip(w).step_by(workers)`), and a mutex-held
//! first-error slot. Each sample's prediction depends only on that
//! sample, so the reassembled output is bit-identical for any worker
//! count — a property the crate's tests pin down.

use std::sync::Mutex;

use crate::dataset::{quantize_pixel, Dataset};
use crate::error::NnError;
use crate::model::Model;
use crate::table::MacBackend;

/// Result of evaluating a model+backend on a labeled dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Predicted class per sample, in dataset order.
    pub predictions: Vec<u8>,
    /// Number of correct top-1 predictions.
    pub correct: usize,
    /// Total samples.
    pub total: usize,
}

impl Evaluation {
    /// Top-1 accuracy in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Classifies a batch of raw `u8` images across `workers` threads.
/// Returns predictions in input order, independent of `workers`.
///
/// # Errors
///
/// Propagates the first [`NnError`] any worker hits (e.g. a wrongly
/// sized image).
pub fn infer_batch(
    model: &Model,
    backend: &dyn MacBackend,
    images: &[Vec<u8>],
    workers: usize,
) -> Result<Vec<u8>, NnError> {
    let workers = workers.max(1).min(images.len().max(1));
    let mut predictions = vec![0u8; images.len()];
    let failure: Mutex<Option<NnError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        // Hand each worker a round-robin shard of (index, image) pairs
        // and a matching shard of the output buffer via split-off
        // mutable chunks; indices are recomputed from the shard id so
        // no two workers alias an output slot.
        let mut slots: Vec<(usize, &mut u8)> = predictions.iter_mut().enumerate().collect();
        let mut shards: Vec<Vec<(usize, &mut u8)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, slot) in slots.drain(..) {
            shards[i % workers].push((i, slot));
        }
        for shard in shards {
            let failure = &failure;
            scope.spawn(move || {
                for (i, out) in shard {
                    match model.predict(backend, &quantize(&images[i])) {
                        Ok(class) => *out = class as u8,
                        Err(e) => {
                            let mut slot = failure.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                    }
                }
            });
        }
    });
    match failure.into_inner().unwrap() {
        Some(e) => Err(e),
        None => Ok(predictions),
    }
}

/// Evaluates top-1 accuracy of `model` on `dataset` under `backend`.
///
/// # Errors
///
/// Propagates [`infer_batch`] errors.
pub fn evaluate(
    model: &Model,
    backend: &dyn MacBackend,
    dataset: &Dataset,
    workers: usize,
) -> Result<Evaluation, NnError> {
    let predictions = infer_batch(model, backend, &dataset.images, workers)?;
    let correct = predictions
        .iter()
        .zip(&dataset.labels)
        .filter(|(p, l)| p == l)
        .count();
    Ok(Evaluation {
        correct,
        total: dataset.len(),
        predictions,
    })
}

fn quantize(image: &[u8]) -> Vec<i8> {
    image.iter().map(|&p| quantize_pixel(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::table::ProductTable;
    use crate::train::reference_model;

    #[test]
    fn evaluation_counts_match_predictions() {
        let ds = dataset::generate(16, 42);
        let eval = evaluate(reference_model(), &ProductTable::exact(), &ds, 1).unwrap();
        assert_eq!(eval.total, 16);
        assert_eq!(eval.predictions.len(), 16);
        let recount = eval
            .predictions
            .iter()
            .zip(&ds.labels)
            .filter(|(p, l)| p == l)
            .count();
        assert_eq!(eval.correct, recount);
    }

    #[test]
    fn bad_image_size_is_reported_not_panicked() {
        let ds = Dataset {
            images: vec![vec![0u8; 7]],
            labels: vec![0],
        };
        let err = evaluate(reference_model(), &ProductTable::exact(), &ds, 2).unwrap_err();
        assert_eq!(
            err,
            NnError::BadInput {
                expected: 64,
                got: 7
            }
        );
    }

    #[test]
    fn zero_workers_degrades_to_one() {
        let ds = dataset::generate(3, 1);
        let a = infer_batch(reference_model(), &ProductTable::exact(), &ds.images, 0).unwrap();
        let b = infer_batch(reference_model(), &ProductTable::exact(), &ds.images, 1).unwrap();
        assert_eq!(a, b);
    }
}
