//! Cross-cutting engine guarantees: worker-count determinism, typed
//! errors on broken fixtures, and table/scalar bit-identity on real
//! multiplier architectures.

use axmul_core::behavioral::{Ca, Cc};
use axmul_nn::{
    evaluate, infer_batch, reference_model, test_set, Dataset, Dense, Layer, Model, NnError,
    ProductTable, ScalarMac, Shape,
};

#[test]
fn batch_inference_is_deterministic_across_worker_counts() {
    let model = reference_model();
    let test = test_set();
    let backend = ProductTable::new(&Cc::new(8).unwrap()).unwrap();
    let one = evaluate(model, &backend, &test, 1).unwrap();
    let two = evaluate(model, &backend, &test, 2).unwrap();
    let four = evaluate(model, &backend, &test, 4).unwrap();
    assert_eq!(one.predictions, two.predictions);
    assert_eq!(one.predictions, four.predictions);
    assert_eq!(one.correct, four.correct);
    assert_eq!(one.accuracy(), four.accuracy());
    // More workers than samples must also be safe and identical.
    let tiny: Vec<Vec<u8>> = test.images[..3].to_vec();
    let wide = infer_batch(model, &backend, &tiny, 64).unwrap();
    assert_eq!(wide, one.predictions[..3]);
}

#[test]
fn mismatched_weight_shape_is_a_typed_error_not_a_panic() {
    let err = Model::new(
        Shape { c: 1, h: 8, w: 8 },
        vec![Layer::Dense(Dense {
            in_f: 64,
            out_f: 4,
            weights: vec![0; 64 * 4 - 1], // one weight short
            bias: vec![0; 4],
            requant: None,
        })],
    )
    .unwrap_err();
    assert_eq!(
        err,
        NnError::ShapeMismatch {
            layer: "layer 0 (Dense weights)".into(),
            expected: 256,
            got: 255
        }
    );

    // A wrongly sized image surfaces mid-batch as BadInput.
    let broken = Dataset {
        images: vec![vec![0u8; 64], vec![0u8; 63]],
        labels: vec![0, 1],
    };
    let err = evaluate(reference_model(), &ProductTable::exact(), &broken, 2).unwrap_err();
    assert_eq!(
        err,
        NnError::BadInput {
            expected: 64,
            got: 63
        }
    );
}

#[test]
fn table_backend_is_bit_identical_to_scalar_on_inference() {
    // Not just on raw products (the workspace-level property test
    // covers the roster): the *network outputs* must agree too.
    let model = reference_model();
    let sample = Dataset {
        images: test_set().images[..24].to_vec(),
        labels: test_set().labels[..24].to_vec(),
    };
    fn check(model: &Model, sample: &Dataset, mult: impl axmul_core::Multiplier + Sync) {
        let table = ProductTable::new(&mult).unwrap();
        let scalar = ScalarMac::new(mult).unwrap();
        let via_table = evaluate(model, &table, sample, 2).unwrap();
        let via_scalar = evaluate(model, &scalar, sample, 2).unwrap();
        assert_eq!(via_table.predictions, via_scalar.predictions);
    }
    check(model, &sample, Ca::new(8).unwrap());
    check(model, &sample, Cc::new(8).unwrap());
}

#[test]
fn exact_backend_reproduces_reference_accuracy() {
    // The acceptance anchor: the exact-multiplier configuration must
    // reproduce the embedded reference accuracy exactly — and that
    // accuracy is strong enough to mean the model actually works.
    let model = reference_model();
    let test = test_set();
    let exact = evaluate(model, &ProductTable::exact(), &test, 2).unwrap();
    let again = evaluate(model, &ProductTable::exact(), &test, 3).unwrap();
    assert_eq!(exact.predictions, again.predictions);
    assert!(exact.accuracy() >= 0.9, "got {}", exact.accuracy());
}
