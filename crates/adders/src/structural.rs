//! Structural netlists of the adders, on the same fabric as the
//! multipliers.

use axmul_fabric::{Init, Netlist, NetlistBuilder};

/// Exact `bits`-wide carry-chain adder: one XOR LUT per bit plus the
/// chain; output is `bits + 1` wide.
///
/// # Panics
///
/// Panics unless `1 <= bits <= 32`.
///
/// # Examples
///
/// ```
/// use axmul_adders::exact_adder_netlist;
///
/// let nl = exact_adder_netlist(8);
/// assert_eq!(nl.lut_count(), 8);
/// assert_eq!(nl.eval(&[200, 100])?, vec![300]);
/// # Ok::<(), axmul_fabric::FabricError>(())
/// ```
#[must_use]
pub fn exact_adder_netlist(bits: u32) -> Netlist {
    assert!((1..=32).contains(&bits), "width out of range");
    let mut bld = NetlistBuilder::new(format!("add{bits}"));
    let a = bld.inputs("a", bits as usize);
    let b = bld.inputs("b", bits as usize);
    let zero = bld.constant(false);
    let mut props = Vec::new();
    for i in 0..bits as usize {
        let (o6, _) = bld.lut2(Init::XOR2, a[i], b[i]);
        props.push(o6);
    }
    let (mut sums, cout) = bld.carry_chain(zero, &props, &a);
    sums.push(cout);
    bld.output_bus("s", &sums);
    bld.finish().expect("adder netlist is well-formed")
}

/// Lower-OR adder netlist: `k` OR LUTs for the low part, an exact
/// carry-chain adder for the upper part (no carry between them).
///
/// LUT count: `bits` (k OR LUTs + bits−k XOR LUTs) — same as the exact
/// adder; the savings are in the shorter carry chain and, on the
/// device, the freed chain stages.
///
/// # Panics
///
/// Panics unless `k <= bits <= 32` and `bits >= 1`.
#[must_use]
pub fn loa_netlist(bits: u32, k: u32) -> Netlist {
    assert!((1..=32).contains(&bits) && k <= bits, "bad configuration");
    let mut bld = NetlistBuilder::new(format!("loa{bits}_{k}"));
    let a = bld.inputs("a", bits as usize);
    let b = bld.inputs("b", bits as usize);
    let zero = bld.constant(false);
    let mut out = Vec::new();
    for i in 0..k as usize {
        let (o6, _) = bld.lut2(Init::OR2, a[i], b[i]);
        out.push(o6);
    }
    if k < bits {
        let mut props = Vec::new();
        let mut gens = Vec::new();
        for i in k as usize..bits as usize {
            let (o6, _) = bld.lut2(Init::XOR2, a[i], b[i]);
            props.push(o6);
            gens.push(a[i]);
        }
        let (sums, cout) = bld.carry_chain(zero, &props, &gens);
        out.extend(sums);
        out.push(cout);
    } else {
        out.push(zero);
    }
    bld.output_bus("s", &out);
    bld.finish().expect("loa netlist is well-formed")
}

/// Carry-free adder netlist: one XOR LUT per bit, no chain at all.
///
/// # Panics
///
/// Panics unless `1 <= bits <= 32`.
#[must_use]
pub fn carry_free_adder_netlist(bits: u32) -> Netlist {
    assert!((1..=32).contains(&bits), "width out of range");
    let mut bld = NetlistBuilder::new(format!("cfree_add{bits}"));
    let a = bld.inputs("a", bits as usize);
    let b = bld.inputs("b", bits as usize);
    let mut out = Vec::new();
    for i in 0..bits as usize {
        let (o6, _) = bld.lut2(Init::XOR2, a[i], b[i]);
        out.push(o6);
    }
    bld.output_bus("s", &out);
    bld.finish().expect("carry-free netlist is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::{Adder, CarryFreeAdder, ExactAdder, LowerOrAdder};
    use axmul_fabric::sim::for_each_operand_pair;
    use axmul_fabric::timing::{analyze, DelayModel};

    #[test]
    fn exact_matches_behavioral() {
        let nl = exact_adder_netlist(8);
        let m = ExactAdder::new(8);
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], m.add(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn loa_matches_behavioral_all_splits() {
        for k in [0u32, 2, 4, 7, 8] {
            let nl = loa_netlist(8, k);
            let m = LowerOrAdder::new(8, k);
            for_each_operand_pair(&nl, |a, b, out| {
                assert_eq!(out[0], m.add(a, b), "k={k} a={a} b={b}");
            })
            .unwrap();
        }
    }

    #[test]
    fn carry_free_matches_behavioral() {
        let nl = carry_free_adder_netlist(8);
        let m = CarryFreeAdder::new(8);
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], m.add(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn approximation_shortens_the_critical_path() {
        let model = DelayModel::virtex7();
        let exact = analyze(&exact_adder_netlist(16), &model).critical_path_ns;
        let loa = analyze(&loa_netlist(16, 8), &model).critical_path_ns;
        let cfree = analyze(&carry_free_adder_netlist(16), &model).critical_path_ns;
        assert!(loa < exact, "LOA {loa:.2} vs exact {exact:.2}");
        assert!(cfree < loa, "carry-free {cfree:.2} vs LOA {loa:.2}");
    }

    #[test]
    fn chain_usage_shrinks_with_k() {
        assert_eq!(exact_adder_netlist(16).carry4_count(), 4);
        assert_eq!(loa_netlist(16, 8).carry4_count(), 2);
        assert_eq!(carry_free_adder_netlist(16).carry4_count(), 0);
    }
}
