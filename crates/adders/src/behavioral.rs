//! Behavioral adder models.

use std::fmt;

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1 << bits) - 1
    }
}

/// An unsigned adder over two `bits`-wide operands producing a
/// `bits + 1`-wide (possibly approximate) sum.
pub trait Adder {
    /// Operand width in bits.
    fn bits(&self) -> u32;

    /// The (possibly approximate) sum. Operands are masked to
    /// [`Adder::bits`].
    fn add(&self, a: u64, b: u64) -> u64;

    /// Architecture name for reports.
    fn name(&self) -> &str;

    /// The exact sum of the masked operands.
    fn exact(&self, a: u64, b: u64) -> u64 {
        (a & mask(self.bits())) + (b & mask(self.bits()))
    }

    /// Signed error `exact − approximate`.
    fn error(&self, a: u64, b: u64) -> i64 {
        self.exact(a, b) as i64 - self.add(a, b) as i64
    }
}

impl<A: Adder + ?Sized> Adder for &A {
    fn bits(&self) -> u32 {
        (**self).bits()
    }
    fn add(&self, a: u64, b: u64) -> u64 {
        (**self).add(a, b)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<A: Adder + ?Sized> Adder for Box<A> {
    fn bits(&self) -> u32 {
        (**self).bits()
    }
    fn add(&self, a: u64, b: u64) -> u64 {
        (**self).add(a, b)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

macro_rules! adder_common {
    () => {
        fn bits(&self) -> u32 {
            self.bits
        }
        fn name(&self) -> &str {
            &self.name
        }
    };
}

/// The exact reference adder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactAdder {
    bits: u32,
    name: String,
}

impl ExactAdder {
    /// Creates an exact `bits`-wide adder.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 63`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=63).contains(&bits), "width out of range");
        ExactAdder {
            bits,
            name: format!("add{bits}"),
        }
    }
}

impl Adder for ExactAdder {
    adder_common!();
    fn add(&self, a: u64, b: u64) -> u64 {
        (a & mask(self.bits)) + (b & mask(self.bits))
    }
}

/// Truncated adder: the low `k` result bits are forced to zero and no
/// carry enters the upper part (the low operand bits are simply not
/// wired).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncatedAdder {
    bits: u32,
    k: u32,
    name: String,
}

impl TruncatedAdder {
    /// Creates the adder with `k` truncated low bits.
    ///
    /// # Panics
    ///
    /// Panics unless `k < bits <= 63`.
    #[must_use]
    pub fn new(bits: u32, k: u32) -> Self {
        assert!((1..=63).contains(&bits) && k < bits, "bad configuration");
        TruncatedAdder {
            bits,
            k,
            name: format!("trunc_add{bits}_{k}"),
        }
    }
}

impl Adder for TruncatedAdder {
    adder_common!();
    fn add(&self, a: u64, b: u64) -> u64 {
        let m = !mask(self.k);
        ((a & mask(self.bits) & m) + (b & mask(self.bits) & m)) & !mask(self.k)
    }
}

/// The lower-OR adder (LOA): result bits below `k` are the bitwise OR
/// of the operands (a cheap, one-LUT-per-bit approximation of a sum
/// digit) and the upper part adds exactly with no carry-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerOrAdder {
    bits: u32,
    k: u32,
    name: String,
}

impl LowerOrAdder {
    /// Creates the adder with `k` OR-approximated low bits.
    ///
    /// # Panics
    ///
    /// Panics unless `k <= bits <= 63`.
    #[must_use]
    pub fn new(bits: u32, k: u32) -> Self {
        assert!((1..=63).contains(&bits) && k <= bits, "bad configuration");
        LowerOrAdder {
            bits,
            k,
            name: format!("loa{bits}_{k}"),
        }
    }

    /// Number of OR-approximated low bits.
    #[must_use]
    pub fn lower_bits(&self) -> u32 {
        self.k
    }
}

impl Adder for LowerOrAdder {
    adder_common!();
    fn add(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (a & mask(self.bits), b & mask(self.bits));
        let low = (a | b) & mask(self.k);
        let high = (a >> self.k) + (b >> self.k);
        low | (high << self.k)
    }
}

/// The carry-free adder: per-bit XOR, all carries dropped — the
/// per-column operation of the paper's `Cc` summation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarryFreeAdder {
    bits: u32,
    name: String,
}

impl CarryFreeAdder {
    /// Creates a `bits`-wide carry-free adder.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 63`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=63).contains(&bits), "width out of range");
        CarryFreeAdder {
            bits,
            name: format!("cfree_add{bits}"),
        }
    }
}

impl Adder for CarryFreeAdder {
    adder_common!();
    fn add(&self, a: u64, b: u64) -> u64 {
        (a ^ b) & mask(self.bits)
    }
}

impl fmt::Display for ExactAdder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_exact() {
        let a = ExactAdder::new(8);
        for x in (0..256).step_by(7) {
            for y in (0..256).step_by(11) {
                assert_eq!(a.add(x, y), x + y);
                assert_eq!(a.error(x, y), 0);
            }
        }
    }

    #[test]
    fn loa_degenerate_cases() {
        // k = 0 is exact; k = bits is a pure OR.
        let exact = LowerOrAdder::new(8, 0);
        let all_or = LowerOrAdder::new(8, 8);
        for x in (0..256).step_by(5) {
            for y in (0..256).step_by(3) {
                assert_eq!(exact.add(x, y), x + y);
                assert_eq!(all_or.add(x, y), x | y);
            }
        }
    }

    #[test]
    fn loa_error_bounded_by_low_part() {
        let a = LowerOrAdder::new(8, 4);
        for x in 0..256u64 {
            for y in 0..256u64 {
                let e = a.error(x, y);
                // OR underestimates each low column by at most its
                // carry chain: |error| < 2^(k+1).
                assert!(e.abs() < 32, "x={x} y={y} e={e}");
            }
        }
    }

    #[test]
    fn truncated_zeroes_low_bits() {
        let a = TruncatedAdder::new(8, 3);
        for x in 0..256u64 {
            for y in 0..256u64 {
                assert_eq!(a.add(x, y) & 7, 0);
                assert!(a.error(x, y) >= 0, "only underestimates");
                assert!(a.error(x, y) < 16, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn carry_free_is_xor() {
        let a = CarryFreeAdder::new(8);
        assert_eq!(a.add(0b1010, 0b0110), 0b1100);
        assert_eq!(a.add(255, 255), 0);
    }

    #[test]
    fn loa_is_never_smaller_than_or_of_low_bits() {
        // LOA's low part dominates both operands' low bits.
        let a = LowerOrAdder::new(8, 4);
        for x in (0..256u64).step_by(3) {
            for y in (0..256u64).step_by(7) {
                let low = a.add(x, y) & 0xF;
                assert_eq!(low & (x & 0xF), x & 0xF & low);
                assert_eq!(low, (x | y) & 0xF);
            }
        }
    }
}
