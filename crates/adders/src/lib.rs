//! # axmul-adders
//!
//! Approximate adders on the LUT/carry-chain fabric. The paper's
//! partial-product summation is itself an (accurate or approximate)
//! addition problem, and its related work (\[4\], \[5\], \[8\], \[9\],
//! \[11\]) is dominated by approximate adders; this crate provides the
//! classic designs on the same substrate, each with a behavioral model
//! and a structural netlist proven equivalent:
//!
//! * [`ExactAdder`] — carry-chain ripple adder (the reference).
//! * [`TruncatedAdder`] — the `k` low result bits forced to zero.
//! * [`LowerOrAdder`] — the LOA: low `k` bits OR'd bitwise (no carry
//!   into the accurate upper part), the workhorse of low-power
//!   approximate DSP datapaths.
//! * [`CarryFreeAdder`] — per-bit XOR with all carries dropped: the
//!   degenerate end of the spectrum, and exactly the per-column
//!   operation of the paper's `Cc` summation (Fig. 6).
//!
//! ```
//! use axmul_adders::{Adder, ExactAdder, LowerOrAdder};
//!
//! let exact = ExactAdder::new(8);
//! assert_eq!(exact.add(200, 100), 300);
//! let loa = LowerOrAdder::new(8, 4);
//! assert_eq!(loa.add(0b0000_1111, 0b0000_0001), 0b0000_1111); // low OR
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavioral;
mod stats;
mod structural;

pub use behavioral::{Adder, CarryFreeAdder, ExactAdder, LowerOrAdder, TruncatedAdder};
pub use stats::AdderStats;
pub use structural::{carry_free_adder_netlist, exact_adder_netlist, loa_netlist};
