//! Error characterization for adders, mirroring the multiplier metrics.

use std::fmt;

use crate::behavioral::Adder;

/// Exhaustive error statistics of an approximate adder.
#[derive(Debug, Clone, PartialEq)]
pub struct AdderStats {
    /// Adder name.
    pub name: String,
    /// Operand pairs evaluated (`4^bits`).
    pub samples: u64,
    /// Pairs with nonzero error.
    pub error_occurrences: u64,
    /// Largest error magnitude.
    pub max_error: i64,
    /// Mean error magnitude over all samples (MED).
    pub avg_error: f64,
    /// Mean of `|error| / exact` over nonzero exact sums.
    pub avg_relative_error: f64,
}

impl AdderStats {
    /// Exhaustively characterizes `a` over its full operand space.
    ///
    /// # Panics
    ///
    /// Panics if the operand space exceeds 2³² pairs.
    #[must_use]
    pub fn exhaustive(a: &(impl Adder + ?Sized)) -> Self {
        let bits = a.bits();
        assert!(bits <= 12, "exhaustive adder sweep limited to 12 bits");
        let top = 1u64 << bits;
        let mut occ = 0u64;
        let mut max = 0i64;
        let mut sum = 0u128;
        let mut rel = 0.0f64;
        for x in 0..top {
            for y in 0..top {
                let e = a.error(x, y).abs();
                if e != 0 {
                    occ += 1;
                    sum += e as u128;
                    let exact = a.exact(x, y);
                    if exact != 0 {
                        rel += e as f64 / exact as f64;
                    }
                    max = max.max(e);
                }
            }
        }
        let samples = top * top;
        AdderStats {
            name: a.name().to_string(),
            samples,
            error_occurrences: occ,
            max_error: max,
            avg_error: sum as f64 / samples as f64,
            avg_relative_error: rel / samples as f64,
        }
    }
}

impl fmt::Display for AdderStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: max |e| {}, avg {:.4}, avg rel {:.6}, {} / {} erroneous",
            self.name,
            self.max_error,
            self.avg_error,
            self.avg_relative_error,
            self.error_occurrences,
            self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavioral::{CarryFreeAdder, ExactAdder, LowerOrAdder, TruncatedAdder};

    #[test]
    fn exact_has_no_errors() {
        let s = AdderStats::exhaustive(&ExactAdder::new(6));
        assert_eq!(s.error_occurrences, 0);
        assert_eq!(s.max_error, 0);
    }

    #[test]
    fn loa_beats_truncation_at_equal_k() {
        // The LOA's OR recovers most of the low-part magnitude that
        // truncation throws away.
        let loa = AdderStats::exhaustive(&LowerOrAdder::new(8, 4));
        let trunc = AdderStats::exhaustive(&TruncatedAdder::new(8, 4));
        assert!(loa.avg_error < trunc.avg_error);
        assert!(loa.max_error <= trunc.max_error + 1);
    }

    #[test]
    fn error_grows_with_k() {
        let mut last = -1.0f64;
        for k in [0u32, 2, 4, 6, 8] {
            let s = AdderStats::exhaustive(&LowerOrAdder::new(8, k));
            assert!(s.avg_error >= last, "k={k}");
            last = s.avg_error;
        }
    }

    #[test]
    fn carry_free_is_the_worst() {
        let cfree = AdderStats::exhaustive(&CarryFreeAdder::new(8));
        let loa = AdderStats::exhaustive(&LowerOrAdder::new(8, 8));
        assert!(cfree.avg_error > loa.avg_error);
        assert!(cfree.max_error > 255, "drops the whole carry structure");
    }
}
