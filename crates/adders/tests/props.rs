//! Property-based tests of the adder invariants.

use axmul_adders::{
    carry_free_adder_netlist, exact_adder_netlist, loa_netlist, Adder, CarryFreeAdder, ExactAdder,
    LowerOrAdder, TruncatedAdder,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The exact adder is exact at every width.
    #[test]
    fn exact_adds(bits in 1u32..32, a in any::<u64>(), b in any::<u64>()) {
        let m = ExactAdder::new(bits);
        let mask = (1u64 << bits) - 1;
        prop_assert_eq!(m.add(a, b), (a & mask) + (b & mask));
    }

    /// LOA error bounds: |error| < 2^(k+1), and the upper part is
    /// never corrupted beyond the single lost carry.
    #[test]
    fn loa_error_bounds(bits in 2u32..20, k_frac in 0u32..100, a in any::<u64>(), b in any::<u64>()) {
        let k = k_frac % (bits + 1);
        let m = LowerOrAdder::new(bits, k);
        let e = m.error(a, b);
        prop_assert!(e.unsigned_abs() < 1u64 << (k + 1), "k={} e={}", k, e);
        // Upper bits differ from exact by at most one unit at 2^k.
        let mask = (1u64 << bits) - 1;
        let exact_hi = ((a & mask) + (b & mask)) >> k;
        let got_hi = m.add(a, b) >> k;
        prop_assert!(exact_hi.abs_diff(got_hi) <= 1);
    }

    /// The truncated adder only underestimates and its result is
    /// always a multiple of 2^k.
    #[test]
    fn truncated_properties(bits in 2u32..20, k_frac in 0u32..100, a in any::<u64>(), b in any::<u64>()) {
        let k = k_frac % bits;
        let m = TruncatedAdder::new(bits, k);
        let r = m.add(a, b);
        prop_assert_eq!(r % (1 << k), 0);
        prop_assert!(m.error(a, b) >= 0);
        prop_assert!(m.error(a, b) < 1i64 << (k + 1));
    }

    /// The carry-free adder is its own inverse: adding `b` twice
    /// cancels (XOR structure).
    #[test]
    fn carry_free_is_involutive(bits in 1u32..32, a in any::<u64>(), b in any::<u64>()) {
        let m = CarryFreeAdder::new(bits);
        prop_assert_eq!(m.add(m.add(a, b), b), a & ((1u64 << bits) - 1));
    }

    /// Structural netlists equal behavioral models on random operands
    /// at random widths and splits.
    #[test]
    fn netlists_match_behavioral(bits in 1u32..14, k_frac in 0u32..100, a in any::<u64>(), b in any::<u64>()) {
        let mask = (1u64 << bits) - 1;
        let (a, b) = (a & mask, b & mask);
        let exact = exact_adder_netlist(bits);
        prop_assert_eq!(exact.eval(&[a, b]).unwrap()[0], ExactAdder::new(bits).add(a, b));
        let k = k_frac % (bits + 1);
        let loa = loa_netlist(bits, k);
        prop_assert_eq!(loa.eval(&[a, b]).unwrap()[0], LowerOrAdder::new(bits, k).add(a, b));
        let cfree = carry_free_adder_netlist(bits);
        prop_assert_eq!(cfree.eval(&[a, b]).unwrap()[0], CarryFreeAdder::new(bits).add(a, b));
    }

    /// Commutativity holds for every adder in the library.
    #[test]
    fn adders_commute(bits in 2u32..16, a in any::<u64>(), b in any::<u64>()) {
        let designs: Vec<Box<dyn Adder>> = vec![
            Box::new(ExactAdder::new(bits)),
            Box::new(LowerOrAdder::new(bits, bits / 2)),
            Box::new(TruncatedAdder::new(bits, bits / 2)),
            Box::new(CarryFreeAdder::new(bits)),
        ];
        for m in designs {
            prop_assert_eq!(m.add(a, b), m.add(b, a), "{}", m.name());
        }
    }
}
