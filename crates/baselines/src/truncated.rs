//! Precision-reduced ("truncated") multipliers: the exact product with
//! the `k` least significant bits rounded to zero.
//!
//! The paper compares against a truncated 4×4 (3 LSBs zeroed) in Fig. 7
//! and `Mult(8,4)` (4 LSBs zeroed) in Table 5, noting that despite its
//! low average relative error, `Mult(8,4)`'s high resource usage and
//! huge number of maximum-error occurrences (2 048) filter it out of
//! the Pareto front.

use axmul_core::{mask_for, Multiplier};

/// A `bits`×`bits` multiplier whose product has the `lsbs` least
/// significant bits forced to zero.
///
/// # Examples
///
/// ```
/// use axmul_baselines::Truncated;
/// use axmul_core::Multiplier;
///
/// let m = Truncated::new(8, 4); // the paper's Mult(8,4)
/// assert_eq!(m.multiply(15, 15), 224); // 225 & !15
/// assert_eq!(m.error(15, 15), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncated {
    bits: u32,
    lsbs: u32,
    name: String,
}

impl Truncated {
    /// Creates the truncated multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32, or if `lsbs` is not
    /// smaller than the `2·bits` product width.
    #[must_use]
    pub fn new(bits: u32, lsbs: u32) -> Self {
        assert!(bits > 0 && bits <= 32, "operand width out of range");
        assert!(lsbs < 2 * bits, "cannot truncate the whole product");
        Truncated {
            bits,
            lsbs,
            name: format!("Mult({bits},{lsbs})"),
        }
    }

    /// Number of zeroed product LSBs.
    #[must_use]
    pub fn lsbs(&self) -> u32 {
        self.lsbs
    }
}

impl Multiplier for Truncated {
    fn a_bits(&self) -> u32 {
        self.bits
    }
    fn b_bits(&self) -> u32 {
        self.bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        ((a & mask_for(self.bits)) * (b & mask_for(self.bits))) & !mask_for(self.lsbs)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mult_8_4_matches_table5() {
        let m = Truncated::new(8, 4);
        let mut occ = 0u64;
        let mut max = 0i64;
        let mut max_occ = 0u64;
        let mut sum = 0i64;
        let mut rel = 0.0f64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let e = m.error(a, b);
                assert!((0..16).contains(&e));
                if e != 0 {
                    occ += 1;
                    sum += e;
                    rel += e as f64 / (a * b) as f64;
                    if e > max {
                        max = e;
                        max_occ = 1;
                    } else if e == max {
                        max_occ += 1;
                    }
                }
            }
        }
        assert_eq!(max, 15);
        assert_eq!(max_occ, 2048);
        assert_eq!(occ, 53248);
        assert!((sum as f64 / 65536.0 - 6.5).abs() < 1e-9);
        // Table 5 prints 0.0037; the exact value is 0.003768.
        assert!((rel / 65536.0 - 0.0037).abs() < 1e-4);
    }

    #[test]
    fn truncated_4x4_with_3_lsbs() {
        let m = Truncated::new(4, 3);
        assert_eq!(m.multiply(3, 3), 8); // 9 & !7
        assert_eq!(m.multiply(15, 15), 224); // 225 & !7
        assert_eq!(m.name(), "Mult(4,3)");
    }

    #[test]
    fn zero_truncation_is_exact() {
        let m = Truncated::new(8, 0);
        for a in (0..256u64).step_by(17) {
            for b in (0..256u64).step_by(13) {
                assert_eq!(m.error(a, b), 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn rejects_total_truncation() {
        let _ = Truncated::new(4, 8);
    }
}
