//! An EvoApprox8b-style library of approximate 8×8 multipliers.
//!
//! The paper's Figs. 9–10 place the proposed designs against the
//! EvoApprox8b library \[17\] of evolutionary-synthesized approximate
//! multipliers, observing that most of its (ASIC-)Pareto-optimal points
//! collapse when mapped to LUT fabrics. The original library's C models
//! are not vendored here; instead this module generates a structured
//! cloud of approximate 8×8 designs spanning the same accuracy/area
//! space, each with **both** a behavioral model and a real structural
//! netlist on the fabric:
//!
//! * quadrant hybrids — each of the four 4×4 partial products uses an
//!   exact, proposed-approximate, Kulkarni, or Rehman kernel, combined
//!   with accurate or carry-free summation;
//! * partial-product truncation — array multipliers that *omit* the
//!   low-weight partial-product bits (the classic hardware truncation,
//!   which unlike the paper's `Mult(8,4)` also loses low-column
//!   carries).
//!
//! Because every design is a real netlist, the Pareto analysis runs on
//! measured LUT counts and STA delays, exactly like the proposed
//! designs — which is the fair version of the paper's observation.

use std::fmt;

use axmul_core::behavioral::{approx_4x4, Summation};
use axmul_core::structural::{approx_4x4_netlist, combine_partial_products, compose_netlist};
use axmul_core::{mask_for, Multiplier};
use axmul_fabric::{Init, NetId, Netlist, NetlistBuilder};

use crate::kulkarni::{kulkarni_2x2, kulkarni_kernel_netlist};
use crate::rehman::{rehman_2x2, rehman_kernel_netlist};
use crate::vivado::array_mult_netlist;

/// The 4×4 kernel used by one quadrant of a hybrid design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Exact 4×4 array multiplier (13 LUTs).
    Exact,
    /// The proposed approximate 4×4 (12 LUTs, Table 3).
    Proposed,
    /// Kulkarni 2×2 kernels composed to 4×4.
    Kulkarni,
    /// Rehman (W) 2×2 kernels composed to 4×4.
    Rehman,
}

impl Kernel {
    fn letter(self) -> char {
        match self {
            Kernel::Exact => 'E',
            Kernel::Proposed => 'P',
            Kernel::Kulkarni => 'K',
            Kernel::Rehman => 'W',
        }
    }

    fn multiply(self, a: u64, b: u64) -> u64 {
        let (a, b) = (a & 0xF, b & 0xF);
        match self {
            Kernel::Exact => a * b,
            Kernel::Proposed => approx_4x4(a, b),
            Kernel::Kulkarni => compose2(kulkarni_2x2, a, b),
            Kernel::Rehman => compose2(rehman_2x2, a, b),
        }
    }

    fn netlist(self) -> Netlist {
        match self {
            Kernel::Exact => array_mult_netlist(4, 4),
            Kernel::Proposed => approx_4x4_netlist(),
            Kernel::Kulkarni => compose_netlist(&kulkarni_kernel_netlist(), 4, Summation::Accurate)
                .expect("4 is a valid width"),
            Kernel::Rehman => compose_netlist(&rehman_kernel_netlist(), 4, Summation::Accurate)
                .expect("4 is a valid width"),
        }
    }
}

// Builds a 4x4 product from a 2x2 kernel with exact summation.
fn compose2(kernel: fn(u64, u64) -> u64, a: u64, b: u64) -> u64 {
    let ll = kernel(a & 3, b & 3);
    let hl = kernel(a >> 2, b & 3);
    let lh = kernel(a & 3, b >> 2);
    let hh = kernel(a >> 2, b >> 2);
    ll + ((hl + lh) << 2) + (hh << 4)
}

/// One member of the generated library: a concrete approximate 8×8
/// multiplier with a behavioral model and a structural netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct EvoDesign {
    name: String,
    shape: Shape,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// Quadrant kernels [LL, HL, LH, HH] + summation strategy.
    Hybrid([Kernel; 4], Summation),
    /// Array multiplier omitting partial-product bits below `drop`.
    PpTruncated(u32),
}

impl EvoDesign {
    /// A quadrant-hybrid design.
    #[must_use]
    pub fn hybrid(quads: [Kernel; 4], summation: Summation) -> Self {
        let letters: String = quads.iter().map(|k| k.letter()).collect();
        let tag = match summation {
            Summation::Accurate => "acc",
            Summation::CarryFree => "cfree",
        };
        EvoDesign {
            name: format!("evo8_{letters}_{tag}"),
            shape: Shape::Hybrid(quads, summation),
        }
    }

    /// A partial-product-truncated array design dropping PP bits below
    /// weight `drop` (`1..=8`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= drop <= 8`.
    #[must_use]
    pub fn pp_truncated(drop: u32) -> Self {
        assert!((1..=8).contains(&drop));
        EvoDesign {
            name: format!("evo8_trunc{drop}"),
            shape: Shape::PpTruncated(drop),
        }
    }

    /// Builds the structural netlist of this design.
    #[must_use]
    pub fn netlist(&self) -> Netlist {
        match self.shape {
            Shape::Hybrid(quads, summation) => {
                let mut bld = NetlistBuilder::new(self.name.clone());
                let a = bld.inputs("a", 8);
                let b = bld.inputs("b", 8);
                let (al, ah) = a.split_at(4);
                let (bl, bh) = b.split_at(4);
                let subs: Vec<Netlist> = quads.iter().map(|k| k.netlist()).collect();
                let ll = bld.instantiate(&subs[0], &[al, bl]).remove(0);
                let hl = bld.instantiate(&subs[1], &[ah, bl]).remove(0);
                let lh = bld.instantiate(&subs[2], &[al, bh]).remove(0);
                let hh = bld.instantiate(&subs[3], &[ah, bh]).remove(0);
                let p = combine_partial_products(&mut bld, &ll, &hl, &lh, &hh, summation);
                bld.output_bus("p", &p);
                bld.finish().expect("hybrid netlist is well-formed")
            }
            Shape::PpTruncated(drop) => pp_truncated_netlist_impl(8, 8, drop),
        }
    }
}

impl Multiplier for EvoDesign {
    fn a_bits(&self) -> u32 {
        8
    }
    fn b_bits(&self) -> u32 {
        8
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (a & 0xFF, b & 0xFF);
        match self.shape {
            Shape::Hybrid(q, summation) => {
                let ll = q[0].multiply(a & 0xF, b & 0xF);
                let hl = q[1].multiply(a >> 4, b & 0xF);
                let lh = q[2].multiply(a & 0xF, b >> 4);
                let hh = q[3].multiply(a >> 4, b >> 4);
                match summation {
                    Summation::Accurate => ll + ((hl + lh) << 4) + (hh << 8),
                    Summation::CarryFree => {
                        let low = ll & 0xF;
                        let mid = ((ll >> 4) ^ hl ^ lh ^ ((hh & 0xF) << 4)) & 0xFF;
                        let high = hh >> 4;
                        low | (mid << 4) | (high << 12)
                    }
                }
            }
            Shape::PpTruncated(drop) => pp_truncated_multiply(a, b, 8, drop),
        }
    }
    fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for EvoDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Behavioral model of partial-product truncation: every `a_i·b_j` term
/// with `i + j < drop` is omitted from the sum.
#[must_use]
pub fn pp_truncated_multiply(a: u64, b: u64, bits: u32, drop: u32) -> u64 {
    let (a, b) = (a & mask_for(bits), b & mask_for(bits));
    let mut sum = 0u64;
    for j in 0..bits {
        if b >> j & 1 == 1 {
            // Keep only the a-bits whose column weight reaches `drop`.
            let keep_from = drop.saturating_sub(j);
            let row = a & !mask_for(keep_from.min(bits));
            sum += row << j;
        }
    }
    sum
}

/// Structural array multiplier omitting PP bits below weight `drop` —
/// the hardware idiom of a truncated multiplier (unlike
/// [`crate::Truncated`], which zeroes the LSBs of the *exact* product,
/// this drops the low partial-product columns and their carries).
///
/// # Panics
///
/// Panics unless `drop < wa + wb`.
#[must_use]
pub fn pp_truncated_netlist(wa: u32, wb: u32, drop: u32) -> Netlist {
    assert!(drop < wa + wb, "cannot drop the whole product");
    pp_truncated_netlist_impl(wa, wb, drop)
}

fn pp_truncated_netlist_impl(wa: u32, wb: u32, drop: u32) -> Netlist {
    let mut bld = NetlistBuilder::new(format!("pp_trunc_{wa}x{wb}_d{drop}"));
    let a = bld.inputs("a", wa as usize);
    let b = bld.inputs("b", wb as usize);
    let zero = bld.constant(false);
    let one = bld.constant(true);
    // acc holds product bits from weight `drop` upward, indexed by
    // absolute weight.
    let mut acc: Vec<NetId> = vec![zero; drop as usize];
    let pp_add = Init::from_dual(
        |i| ((i & 1) == 1) ^ ((i >> 1 & 1 == 1) && (i >> 2 & 1 == 1)),
        |i| (i >> 1 & 1 == 1) && (i >> 2 & 1 == 1),
    );
    for j in 0..wb {
        let keep_from = drop.saturating_sub(j).min(wa);
        let lo = (j + keep_from) as usize; // lowest absolute weight of this row
        let hi = (j + wa) as usize;
        if keep_from >= wa {
            continue; // row entirely truncated
        }
        let mut props = Vec::new();
        let mut gens = Vec::new();
        let upper = acc.len().max(hi);
        for k in lo..upper {
            if k < hi {
                let ai = a[(k as u32 - j) as usize];
                if k < acc.len() {
                    let (o6, o5) = bld.lut6_2(pp_add, [acc[k], ai, b[j as usize], zero, zero, one]);
                    props.push(o6);
                    gens.push(o5);
                } else {
                    let (o6, _) = bld.lut2(Init::AND2, ai, b[j as usize]);
                    props.push(o6);
                    gens.push(zero);
                }
            } else {
                props.push(acc[k]);
                gens.push(zero);
            }
        }
        let (sums, cout) = bld.carry_chain(zero, &props, &gens);
        acc.truncate(lo);
        acc.extend(sums);
        if acc.len() < (wa + wb) as usize {
            acc.push(cout);
        }
    }
    acc.resize((wa + wb) as usize, zero);
    bld.output_bus("p", &acc);
    bld.finish().expect("pp-truncated netlist is well-formed")
}

/// Generates the full library: 8 truncation levels plus a spread of
/// quadrant hybrids (36 designs total).
#[must_use]
pub fn library() -> Vec<EvoDesign> {
    use Kernel::{Exact as E, Kulkarni as K, Proposed as P, Rehman as W};
    let mut out: Vec<EvoDesign> = (1..=8).map(EvoDesign::pp_truncated).collect();
    let hybrids: [[Kernel; 4]; 14] = [
        [E, E, E, E],
        [P, E, E, E],
        [E, P, P, E],
        [P, P, P, E],
        [P, P, P, P],
        [K, E, E, E],
        [K, K, K, E],
        [K, K, K, K],
        [W, E, E, E],
        [W, W, W, E],
        [W, W, W, W],
        [K, P, P, E],
        [W, P, P, E],
        [P, K, W, E],
    ];
    for quads in hybrids {
        out.push(EvoDesign::hybrid(quads, Summation::Accurate));
        out.push(EvoDesign::hybrid(quads, Summation::CarryFree));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::sim::for_each_operand_pair;

    #[test]
    fn library_has_unique_names() {
        let lib = library();
        assert_eq!(lib.len(), 36);
        let mut names: Vec<&str> = lib.iter().map(Multiplier::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 36);
    }

    #[test]
    fn exact_hybrid_with_accurate_summation_is_exact() {
        let d = EvoDesign::hybrid([Kernel::Exact; 4], Summation::Accurate);
        for a in (0..256u64).step_by(7) {
            for b in (0..256u64).step_by(11) {
                assert_eq!(d.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    fn proposed_hybrid_equals_ca_cc() {
        use axmul_core::behavioral::{Ca, Cc};
        let ca = Ca::new(8).unwrap();
        let da = EvoDesign::hybrid([Kernel::Proposed; 4], Summation::Accurate);
        let cc = Cc::new(8).unwrap();
        let dc = EvoDesign::hybrid([Kernel::Proposed; 4], Summation::CarryFree);
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(da.multiply(a, b), ca.multiply(a, b), "acc a={a} b={b}");
                assert_eq!(dc.multiply(a, b), cc.multiply(a, b), "cfree a={a} b={b}");
            }
        }
    }

    #[test]
    fn netlists_match_behavioral_for_sampled_designs() {
        use Kernel::{Exact as E, Kulkarni as K, Proposed as P, Rehman as W};
        let picks = [
            EvoDesign::hybrid([P, K, W, E], Summation::Accurate),
            EvoDesign::hybrid([K, K, K, E], Summation::CarryFree),
            EvoDesign::pp_truncated(4),
            EvoDesign::pp_truncated(1),
        ];
        for d in picks {
            let nl = d.netlist();
            for_each_operand_pair(&nl, |a, b, out| {
                assert_eq!(out[0], d.multiply(a, b), "{} a={a} b={b}", d.name());
            })
            .unwrap();
        }
    }

    #[test]
    fn pp_truncation_only_underestimates_and_saves_area() {
        let full = EvoDesign::pp_truncated(1);
        let heavy = EvoDesign::pp_truncated(6);
        for a in (0..256u64).step_by(5) {
            for b in (0..256u64).step_by(3) {
                assert!(heavy.multiply(a, b) <= a * b);
                assert!(heavy.multiply(a, b) <= full.multiply(a, b) + 2);
            }
        }
        assert!(heavy.netlist().lut_count() < full.netlist().lut_count());
    }

    #[test]
    fn truncation_area_monotone() {
        let mut last = usize::MAX;
        for drop in 1..=8 {
            let luts = EvoDesign::pp_truncated(drop).netlist().lut_count();
            assert!(luts <= last, "drop={drop}: {luts} > {last}");
            last = luts;
        }
    }
}
