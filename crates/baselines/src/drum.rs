//! DRUM — the Dynamic Range Unbiased Multiplier of Hashemi et al.
//! (ICCAD'15), cited as \[7\] in the paper's related work.
//!
//! DRUM truncates each operand to its `k` most significant bits
//! *starting at the leading one* (a floating-point-like dynamic range
//! reduction), forces the truncated segment's LSB to 1 to debias the
//! expected error, multiplies the two short segments exactly, and
//! shifts the result back.
//!
//! On ASICs this is highly effective (small k×k core, tiny unbiased
//! relative error). On LUT fabrics the leading-one detectors and the
//! two barrel shifters map to deep mux trees that dwarf the savings —
//! one more instance of the paper's thesis that ASIC approximation
//! techniques do not transplant. [`Drum::area_estimate`] carries the
//! documented LUT model used for the Pareto figures.

use axmul_core::{mask_for, Multiplier};
use axmul_fabric::timing::DelayModel;

/// The DRUM(k) approximate multiplier over `bits`-wide operands.
///
/// # Examples
///
/// ```
/// use axmul_baselines::Drum;
/// use axmul_core::Multiplier;
///
/// let m = Drum::new(8, 4);
/// assert_eq!(m.multiply(7, 9), 63);       // small operands stay exact
/// let approx = m.multiply(200, 190);      // large ones are range-reduced
/// assert!((approx as i64 - 38000).unsigned_abs() < 3000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drum {
    bits: u32,
    k: u32,
    name: String,
}

impl Drum {
    /// Creates DRUM with `k`-bit segments over `bits`-wide operands.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= k <= bits <= 32`.
    #[must_use]
    pub fn new(bits: u32, k: u32) -> Self {
        assert!(k >= 2 && k <= bits && bits <= 32, "bad DRUM configuration");
        Drum {
            bits,
            k,
            name: format!("DRUM{k} {bits}x{bits}"),
        }
    }

    /// Segment width `k`.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    // Range reduction: (segment, shift).
    fn reduce(&self, v: u64) -> (u64, u32) {
        if v < (1 << self.k) {
            return (v, 0);
        }
        let l = 63 - v.leading_zeros(); // leading-one position
        let shift = l + 1 - self.k;
        let mut seg = (v >> shift) & mask_for(self.k);
        seg |= 1; // unbiasing: force the truncated LSB to 1
        (seg, shift)
    }

    /// Documented LUT-area model for the Pareto analysis: the exact
    /// k×k core (array cost) plus, per operand, a leading-one detector
    /// (~`bits` LUTs) and a `bits → k` compressor mux tree
    /// (~`k·log2(bits)` LUTs), plus the `2k → 2·bits` output barrel
    /// shifter (~`2·bits·log2(bits)/2` LUTs — two bits per LUT6 per
    /// stage) and the shift-amount adder.
    #[must_use]
    pub fn area_estimate(&self) -> usize {
        let n = self.bits as usize;
        let k = self.k as usize;
        let log = (usize::BITS - (n - 1).leading_zeros()) as usize;
        let core = k * (k - 1) + 1;
        let lod = 2 * n;
        let in_shift = 2 * k * log;
        let out_shift = n * log;
        let shift_add = log + 1;
        core + lod + in_shift + out_shift + shift_add
    }

    /// Documented latency model: LOD (2 LUT levels) → input mux tree
    /// (`log2(bits)` levels) → k×k core (like a small array multiplier)
    /// → output barrel shifter (`log2(2·bits)` levels).
    #[must_use]
    pub fn latency_estimate(&self, model: &DelayModel) -> f64 {
        let level = model.t_lut + model.t_net;
        let log = f64::from(32 - (self.bits - 1).leading_zeros());
        let core_chain = model.t_cyinit
            + f64::from(self.k) * model.t_mux
            + model.t_xorcy
            + f64::from(self.k - 1) * (level + model.t_cyinit + model.t_xorcy);
        model.t_input
            + 2.0 * level          // leading-one detector
            + log * level          // operand compressors
            + core_chain           // exact k x k core
            + (log + 1.0) * level  // output barrel shifter
            + model.t_net
            + model.t_output
    }
}

impl Multiplier for Drum {
    fn a_bits(&self) -> u32 {
        self.bits
    }
    fn b_bits(&self) -> u32 {
        self.bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        let (a, b) = (a & mask_for(self.bits), b & mask_for(self.bits));
        let (sa, sha) = self.reduce(a);
        let (sb, shb) = self.reduce(b);
        (sa * sb) << (sha + shb)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_operands_are_exact() {
        let m = Drum::new(8, 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(m.multiply(a, b), a * b);
            }
        }
    }

    #[test]
    fn unbiasing_beats_plain_truncation() {
        // DRUM's defining property: forcing the segment LSB to 1 makes
        // the signed error far smaller than plain range truncation
        // (which always underestimates).
        let m = Drum::new(8, 4);
        let truncate_only = |v: u64| -> (u64, u32) {
            if v < 16 {
                return (v, 0);
            }
            let l = 63 - v.leading_zeros();
            let shift = l - 3;
            ((v >> shift) & 0xF, shift)
        };
        let mut signed = 0i64;
        let mut signed_trunc = 0i64;
        let mut magnitude = 0i64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let e = m.error(a, b);
                signed += e;
                magnitude += e.abs();
                let (sa, ha) = truncate_only(a);
                let (sb, hb) = truncate_only(b);
                signed_trunc += (a * b) as i64 - ((sa * sb) << (ha + hb)) as i64;
            }
        }
        assert!(magnitude > 0);
        assert!(
            signed.abs() * 3 < signed_trunc.abs(),
            "unbiased {} vs truncated {}",
            signed,
            signed_trunc
        );
        assert!(
            signed.abs() < magnitude / 4,
            "bias {signed} vs magnitude {magnitude}"
        );
    }

    #[test]
    fn relative_error_bounded_by_segment_width() {
        let m = Drum::new(8, 4);
        for a in 1..256u64 {
            for b in 1..256u64 {
                let rel = m.error(a, b).unsigned_abs() as f64 / (a * b) as f64;
                // DRUM-k worst relative error is about 2^(1-k) per
                // operand; with both operands reduced it stays below
                // ~27 % for k = 4.
                assert!(rel < 0.27, "a={a} b={b} rel={rel}");
            }
        }
    }

    #[test]
    fn larger_k_is_more_accurate() {
        let mut last = f64::MAX;
        for k in [3u32, 4, 5, 6] {
            let m = Drum::new(8, k);
            let mut mag = 0u64;
            for a in 0..256u64 {
                for b in 0..256u64 {
                    mag += m.error(a, b).unsigned_abs();
                }
            }
            let avg = mag as f64 / 65536.0;
            assert!(avg < last, "k={k}: {avg} vs {last}");
            last = avg;
        }
    }

    #[test]
    fn area_model_shows_fpga_hostility() {
        // The mux/LOD overhead makes DRUM8 larger than the proposed
        // Ca 8x8 (57 LUTs) despite its tiny 4x4 core — the Fig. 9
        // story for ASIC-oriented dynamic-range designs.
        let m = Drum::new(8, 4);
        assert!(m.area_estimate() > 57, "{}", m.area_estimate());
        let t = m.latency_estimate(&DelayModel::virtex7());
        assert!(t > 5.0, "{t}");
    }
}
