//! The paper's baseline **K**: Kulkarni et al., *"Trading Accuracy for
//! Power with an Underdesigned Multiplier Architecture"* (VLSID 2011).
//!
//! The elementary block is a 2×2 multiplier that is exact everywhere
//! except `3 × 3 → 7` (binary `111` instead of `1001`), which lets the
//! whole product fit in three bits. Higher orders are built recursively
//! with exact summation. The paper's Table 5 statistics for the 8×8
//! instance derive in closed form and are asserted by tests here:
//! maximum error `2·85² = 14 450` (only at `255×255`), mean error
//! `85²/8 = 903.125`, `175² = 30 625` error occurrences.

use axmul_core::behavioral::{Recursive, Summation};
use axmul_core::structural::compose_netlist;
use axmul_core::{Multiplier, WidthError};
use axmul_fabric::{Init, Netlist, NetlistBuilder};

/// The Kulkarni 2×2 kernel: exact except `3×3 → 7`.
#[must_use]
pub fn kulkarni_2x2(a: u64, b: u64) -> u64 {
    let (a, b) = (a & 3, b & 3);
    if a == 3 && b == 3 {
        7
    } else {
        a * b
    }
}

/// The Kulkarni approximate multiplier at `bits`×`bits`
/// (`bits` ∈ {2, 4, 8, 16, 32}).
///
/// # Examples
///
/// ```
/// use axmul_baselines::Kulkarni;
/// use axmul_core::Multiplier;
///
/// let k = Kulkarni::new(8)?;
/// assert_eq!(k.multiply(3, 3), 7);      // kernel approximation
/// assert_eq!(k.multiply(146, 73), 10658); // exact without 3-digit pairs
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Kulkarni {
    inner: Recursive<fn(u64, u64) -> u64>,
}

impl Kulkarni {
    /// Creates the `bits`×`bits` Kulkarni multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] unless `bits` is a power of two in
    /// `2..=32`.
    pub fn new(bits: u32) -> Result<Self, WidthError> {
        Ok(Kulkarni {
            inner: Recursive::new(
                "K",
                bits,
                2,
                kulkarni_2x2 as fn(u64, u64) -> u64,
                Summation::Accurate,
            )?,
        })
    }
}

impl Multiplier for Kulkarni {
    fn a_bits(&self) -> u32 {
        self.inner.a_bits()
    }
    fn b_bits(&self) -> u32 {
        self.inner.b_bits()
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        self.inner.multiply(a, b)
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// The Kulkarni 2×2 kernel as a netlist: two `LUT6_2`s.
///
/// `P1`/`P0` share one fractured LUT (`O6 = A1B0 ∨ A0B1`,
/// `O5 = A0B0`), `P2`/`P3` the other (`O6 = A1B1`, `P3 = 0` — the bit
/// the approximation deletes).
#[must_use]
pub fn kulkarni_kernel_netlist() -> Netlist {
    let mut bld = NetlistBuilder::new("kulkarni2x2");
    let a = bld.inputs("a", 2);
    let b = bld.inputs("b", 2);
    let zero = bld.constant(false);
    let one = bld.constant(true);
    // Pins [I0..I5] = [a0, a1, b0, b1, 0, 1].
    let bitat = |i: u8, k: u8| i >> k & 1 == 1;
    let i01 = Init::from_dual(
        |i| (bitat(i, 1) && bitat(i, 2)) || (bitat(i, 0) && bitat(i, 3)),
        |i| bitat(i, 0) && bitat(i, 2),
    );
    let (p1, p0) = bld.lut6_2(i01, [a[0], a[1], b[0], b[1], zero, one]);
    // P2 = A1·B1 only — route just the two live pins (a routed pin the
    // INIT ignores is the `ignored-pin` lint smell).
    let i2 = Init::from_fn(|i| bitat(i, 0) && bitat(i, 1));
    let p2 = bld.lut6(i2, [a[1], b[1], zero, zero, zero, zero]);
    bld.output_bus("p", &[p0, p1, p2, zero]);
    bld.finish().expect("kulkarni kernel is well-formed")
}

/// Structural Kulkarni multiplier netlist at `bits`×`bits`, composed
/// recursively with the same accurate ternary-adder summation as the
/// proposed `Ca` designs (a *favorable* mapping for the baseline —
/// any FPGA disadvantage it shows is architectural, not an artifact of
/// a sloppy port).
///
/// # Errors
///
/// Returns [`WidthError`] unless `bits` is a power of two in `2..=32`.
pub fn kulkarni_netlist(bits: u32) -> Result<Netlist, WidthError> {
    compose_netlist(&kulkarni_kernel_netlist(), bits, Summation::Accurate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::sim::for_each_operand_pair;

    #[test]
    fn kernel_truth_table() {
        for a in 0..4u64 {
            for b in 0..4u64 {
                let want = if a == 3 && b == 3 { 7 } else { a * b };
                assert_eq!(kulkarni_2x2(a, b), want);
            }
        }
    }

    #[test]
    fn table5_statistics_exact() {
        let k = Kulkarni::new(8).unwrap();
        let mut occ = 0u64;
        let mut max = 0i64;
        let mut max_occ = 0u64;
        let mut sum = 0i64;
        let mut rel = 0.0f64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let e = k.error(a, b);
                assert!(e >= 0, "K only under-estimates");
                if e != 0 {
                    occ += 1;
                    sum += e;
                    rel += e as f64 / (a * b) as f64;
                    if e > max {
                        max = e;
                        max_occ = 1;
                    } else if e == max {
                        max_occ += 1;
                    }
                }
            }
        }
        assert_eq!(max, 14450);
        assert_eq!(max_occ, 1);
        assert_eq!(occ, 30625);
        assert!((sum as f64 / 65536.0 - 903.125).abs() < 1e-9);
        assert!((rel / 65536.0 - 0.032549).abs() < 1e-6);
    }

    #[test]
    fn kernel_netlist_matches_behavioral() {
        let nl = kulkarni_kernel_netlist();
        assert_eq!(nl.lut_count(), 2);
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], kulkarni_2x2(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn recursive_netlist_matches_behavioral_8x8() {
        let nl = kulkarni_netlist(8).unwrap();
        let k = Kulkarni::new(8).unwrap();
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], k.multiply(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn kulkarni_area_exceeds_proposed() {
        // The paper's architectural point: the ASIC-friendly 2x2 kernel
        // maps poorly to LUT6 fabrics — K needs more LUTs than Ca.
        let k8 = kulkarni_netlist(8).unwrap().lut_count();
        assert!(k8 > 57, "K 8x8 uses {k8} LUTs, Ca uses 57");
    }
}
