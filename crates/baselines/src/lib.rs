//! # axmul-baselines
//!
//! Every comparison point of the DAC'18 paper's evaluation, implemented
//! from scratch on the same behavioral/structural foundations as the
//! proposed designs:
//!
//! * [`Kulkarni`] (the paper's **K** \[6\]) — the underdesigned 2×2
//!   multiplier of Kulkarni et al. (VLSID'11), `3×3 → 7`, built
//!   recursively with accurate summation.
//! * [`RehmanW`] (the paper's **W** \[19\]) — the architectural-space
//!   approximate multiplier of Rehman et al. (ICCAD'16). Its 2×2 kernel
//!   errs by −1 at `(1,1)`, `(1,3)` and `(3,1)`; this kernel is derived
//!   from (and exactly reproduces) every W column of the paper's
//!   Table 5.
//! * [`Truncated`] — precision-reduced multipliers with the `k` least
//!   significant product bits forced to zero (the paper's truncated
//!   4×4 and `Mult(8,4)`).
//! * [`VivadoIp`] — accurate soft-logic multipliers standing in for the
//!   Xilinx LogiCORE multiplier IP \[20\] in its area-optimized and
//!   speed-optimized configurations, with structural netlists for
//!   area/latency/energy characterization.
//! * [`evo`] — an EvoApprox8b-style library \[17\] of parameterized
//!   approximate 8×8 designs populating the Pareto clouds of
//!   Figs. 9–10.
//!
//! ```
//! use axmul_baselines::{Kulkarni, RehmanW, Truncated};
//! use axmul_core::Multiplier;
//!
//! let k = Kulkarni::new(8)?;
//! assert_eq!(k.multiply(255, 255), 255 * 255 - 14450); // Table 5 max error
//! let w = RehmanW::new(8)?;
//! assert_eq!(w.multiply(85, 85), 85 * 85 - 7225);      // Table 5 max error
//! let t = Truncated::new(8, 4);
//! assert_eq!(t.multiply(3, 5), 0); // 15 truncates to 0
//! # Ok::<(), axmul_core::WidthError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drum;
pub mod evo;
pub use evo::pp_truncated_netlist;
mod kulkarni;
mod rehman;
mod truncated;
mod vivado;

pub use drum::Drum;
pub use kulkarni::{kulkarni_kernel_netlist, kulkarni_netlist, Kulkarni};
pub use rehman::{rehman_kernel_netlist, rehman_netlist, RehmanW};
pub use truncated::Truncated;
pub use vivado::{array_mult_netlist, csa_tree_mult_netlist, IpOpt, VivadoIp};
