//! Accurate soft-logic multipliers standing in for the Xilinx LogiCORE
//! Multiplier IP \[20\] (the paper's normalization baseline for Fig. 7
//! and the accurate reference of the Pareto analyses).
//!
//! The real IP is generated RTL synthesized by Vivado; here the two
//! optimization goals are modeled structurally:
//!
//! * **Area-optimized** ([`IpOpt::Area`]) — a carry-chain array
//!   multiplier that accumulates one partial-product row at a time.
//!   Minimal LUTs, long serial carry-chain path.
//! * **Speed-optimized** ([`IpOpt::Speed`]) — row-pairs reduced by a
//!   tree of carry-chain ternary adders. More LUTs, shallow delay.
//!
//! Both variants carry the IP's genericity cost: `mult_gen` is natively
//! signed, so an unsigned `N×N` request is built as a zero-extended
//! `(N+1)×(N+1)` datapath. [`array_mult_netlist`] exposes the
//! *unpadded* array as the hand-optimized accurate reference.

use axmul_core::structural::ternary_add;
use axmul_core::{mask_for, Multiplier};
use axmul_fabric::{Init, NetId, Netlist, NetlistBuilder};

/// Optimization goal of the emulated multiplier IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpOpt {
    /// Minimize LUTs (serial row accumulation).
    Area,
    /// Minimize delay (ternary reduction tree).
    Speed,
}

/// An accurate `bits×bits` multiplier emulating the Vivado multiplier
/// IP. Behaviorally exact; structurally characterized via
/// [`VivadoIp::netlist`].
///
/// # Examples
///
/// ```
/// use axmul_baselines::{IpOpt, VivadoIp};
/// use axmul_core::Multiplier;
///
/// let ip = VivadoIp::new(8, IpOpt::Speed);
/// assert_eq!(ip.multiply(250, 199), 49750);
/// let nl = ip.netlist();
/// // The generic IP datapath costs more LUTs than the proposed Ca (57):
/// assert!(nl.lut_count() > 57);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VivadoIp {
    bits: u32,
    opt: IpOpt,
    name: String,
}

impl VivadoIp {
    /// Creates the IP model.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31 (the padded product
    /// must fit `u64`).
    #[must_use]
    pub fn new(bits: u32, opt: IpOpt) -> Self {
        assert!(bits > 0 && bits < 32, "operand width out of range");
        let tag = match opt {
            IpOpt::Area => "Area",
            IpOpt::Speed => "Speed",
        };
        VivadoIp {
            bits,
            opt,
            name: format!("VivadoIP-{tag} {bits}x{bits}"),
        }
    }

    /// The optimization goal.
    #[must_use]
    pub fn opt(&self) -> IpOpt {
        self.opt
    }

    /// Builds the structural netlist of this IP configuration (with the
    /// signed-support zero padding the real core instantiates).
    #[must_use]
    pub fn netlist(&self) -> Netlist {
        let w = self.bits;
        match self.opt {
            IpOpt::Area => padded(w, build_array),
            IpOpt::Speed => padded(w, build_csa_tree),
        }
    }
}

impl Multiplier for VivadoIp {
    fn a_bits(&self) -> u32 {
        self.bits
    }
    fn b_bits(&self) -> u32 {
        self.bits
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        (a & mask_for(self.bits)) * (b & mask_for(self.bits))
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds an exact unsigned `wa×wb` array multiplier: merged
/// partial-product/adder LUTs, one carry chain per accumulated row.
/// This is the *hand-optimized* accurate reference:
/// `1 + (wb−1)·wa` LUTs (57 for 8×8).
///
/// # Panics
///
/// Panics unless `1 <= wa, wb` and `wa + wb <= 64`.
#[must_use]
pub fn array_mult_netlist(wa: u32, wb: u32) -> Netlist {
    assert!(wa >= 1 && wb >= 1 && wa + wb <= 64);
    let mut bld = NetlistBuilder::new(format!("array_{wa}x{wb}"));
    let a = bld.inputs("a", wa as usize);
    let b = bld.inputs("b", wb as usize);
    let p = build_array(&mut bld, &a, &b);
    bld.output_bus("p", &p);
    bld.finish().expect("array multiplier is well-formed")
}

/// Builds an exact unsigned `wa×wb` multiplier with row-pair partial
/// products reduced by a ternary-adder tree (the speed-optimized
/// datapath shape).
///
/// # Panics
///
/// Panics unless `1 <= wa, wb` and `wa + wb <= 64`.
#[must_use]
pub fn csa_tree_mult_netlist(wa: u32, wb: u32) -> Netlist {
    assert!(wa >= 1 && wb >= 1 && wa + wb <= 64);
    let mut bld = NetlistBuilder::new(format!("csa_tree_{wa}x{wb}"));
    let a = bld.inputs("a", wa as usize);
    let b = bld.inputs("b", wb as usize);
    let p = build_csa_tree(&mut bld, &a, &b);
    bld.output_bus("p", &p);
    bld.finish().expect("csa tree multiplier is well-formed")
}

/// Wraps a `build` function with the IP's zero-extension: operands grow
/// by one (constant-zero) bit, the datapath is built at the padded
/// width, and the product is trimmed back.
fn padded(
    bits: u32,
    build: impl Fn(&mut NetlistBuilder, &[NetId], &[NetId]) -> Vec<NetId>,
) -> Netlist {
    let mut bld = NetlistBuilder::new(format!("vivado_ip_{bits}x{bits}"));
    let a = bld.inputs("a", bits as usize);
    let b = bld.inputs("b", bits as usize);
    let zero = bld.constant(false);
    let mut ap = a.clone();
    ap.push(zero);
    let mut bp = b.clone();
    bp.push(zero);
    let p = build(&mut bld, &ap, &bp);
    bld.output_bus("p", &p[..2 * bits as usize]);
    bld.finish().expect("padded multiplier is well-formed")
}

// LUT INIT for a merged PP/adder bit with I5 = 1:
// O6 (upper half) = I0 XOR (I1 AND I2), O5 (lower) = I1 AND I2.
fn pp_add_init() -> Init {
    Init::from_dual(
        |i| ((i & 1) == 1) ^ ((i >> 1 & 1 == 1) && (i >> 2 & 1 == 1)),
        |i| (i >> 1 & 1 == 1) && (i >> 2 & 1 == 1),
    )
}

// LUT INIT for the first merged row with I5 = 1:
// O6 (upper) = (I0 AND I1) XOR (I2 AND I3), O5 (lower) = I0 AND I1.
fn row1_init() -> Init {
    let andp = |i: u8, x: u8, y: u8| (i >> x & 1 == 1) && (i >> y & 1 == 1);
    Init::from_dual(|i| andp(i, 0, 1) ^ andp(i, 2, 3), |i| andp(i, 0, 1))
}

/// Serial array accumulation: exact, `1 + (wb−1)·wa` LUTs.
fn build_array(bld: &mut NetlistBuilder, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    let wa = a.len();
    let wb = b.len();
    let zero = bld.constant(false);
    let one = bld.constant(true);
    // Bit 0 of the product.
    let p0 = {
        let (o6, _) = bld.lut2(Init::AND2, a[0], b[0]);
        o6
    };
    if wb == 1 {
        // Degenerate: product = A & b0.
        let mut p = vec![p0];
        for &ai in &a[1..] {
            let (o6, _) = bld.lut2(Init::AND2, ai, b[0]);
            p.push(o6);
        }
        return p;
    }
    // Merged first two rows: acc = A·b0 + 2·A·b1.
    let mut props = Vec::with_capacity(wa);
    let mut gens = Vec::with_capacity(wa);
    for i in 0..wa {
        let ahi = if i + 1 < wa { a[i + 1] } else { zero };
        // O6 = (a_i & b1) XOR (a_{i+1} & b0); O5 = a_i & b1.
        let (o6, o5) = bld.lut6_2(row1_init(), [a[i], b[1], ahi, b[0], zero, one]);
        props.push(o6);
        gens.push(o5);
    }
    let (sums, cout) = bld.carry_chain(zero, &props, &gens);
    let mut acc = vec![p0];
    acc.extend(sums);
    acc.push(cout);

    // Remaining rows, one carry chain each.
    for j in 2..wb {
        let mut props = Vec::new();
        let mut gens = Vec::new();
        let upper = acc.len().max(j + wa);
        for k in j..upper {
            if k < j + wa {
                let ai = a[k - j];
                if k < acc.len() {
                    let (o6, o5) = bld.lut6_2(pp_add_init(), [acc[k], ai, b[j], zero, zero, one]);
                    props.push(o6);
                    gens.push(o5);
                } else {
                    let (o6, _) = bld.lut2(Init::AND2, ai, b[j]);
                    props.push(o6);
                    gens.push(zero);
                }
            } else {
                // Carry ripples through untouched accumulator bits.
                props.push(acc[k]);
                gens.push(zero);
            }
        }
        let (sums, cout) = bld.carry_chain(zero, &props, &gens);
        acc.truncate(j);
        acc.extend(sums);
        if acc.len() < wa + wb {
            acc.push(cout);
        }
    }
    acc.truncate(wa + wb);
    acc
}

/// Row-pair partial products reduced by a ternary-adder tree.
fn build_csa_tree(bld: &mut NetlistBuilder, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    let wa = a.len();
    let wb = b.len();
    let zero = bld.constant(false);
    let one = bld.constant(true);
    // Row r = A·b_{2r} + 2·A·b_{2r+1}, at weight offset 2r.
    struct Row {
        offset: usize,
        bits: Vec<NetId>,
    }
    let mut rows = Vec::new();
    for r in 0..wb.div_ceil(2) {
        let b_lo = b[2 * r];
        let b_hi = if 2 * r + 1 < wb { b[2 * r + 1] } else { zero };
        let mut props = Vec::with_capacity(wa + 1);
        let mut gens = Vec::with_capacity(wa + 1);
        // Weight i within the row pairs a_i·b_lo with a_{i-1}·b_hi.
        for i in 0..=wa {
            let cur = if i < wa { a[i] } else { zero };
            let prev = if i > 0 { a[i - 1] } else { zero };
            // O6 = (cur & b_lo) XOR (prev & b_hi); O5 = prev & b_hi.
            let (o6, o5) = bld.lut6_2(row1_init(), [prev, b_hi, cur, b_lo, zero, one]);
            props.push(o6);
            gens.push(o5);
        }
        let (sums, cout) = bld.carry_chain(zero, &props, &gens);
        let mut bits = sums;
        bits.push(cout);
        rows.push(Row {
            offset: 2 * r,
            bits,
        });
    }
    // Reduce rows three at a time with ternary adders until one remains.
    while rows.len() > 1 {
        let mut next = Vec::new();
        let mut iter = rows.into_iter();
        while let Some(r0) = iter.next() {
            let r1 = iter.next();
            let r2 = iter.next();
            if r1.is_none() {
                next.push(r0);
                continue;
            }
            let base = r0.offset.min(r1.as_ref().map_or(usize::MAX, |r| r.offset));
            let base = base.min(r2.as_ref().map_or(usize::MAX, |r| r.offset));
            let place = |row: &Option<Row>, width: usize| -> Vec<Option<NetId>> {
                let mut v = vec![None; width];
                if let Some(row) = row {
                    for (k, &n) in row.bits.iter().enumerate() {
                        let pos = row.offset - base + k;
                        if pos < width {
                            v[pos] = Some(n);
                        }
                    }
                }
                v
            };
            let top = [Some(&r0), r1.as_ref(), r2.as_ref()]
                .iter()
                .flatten()
                .map(|r| r.offset + r.bits.len())
                .max()
                .unwrap_or(0);
            let width = (top - base) + 2;
            let r0 = Some(r0);
            let (x, y, z) = (place(&r0, width), place(&r1, width), place(&r2, width));
            let sums = ternary_add(bld, &x, &y, &z, width);
            next.push(Row {
                offset: base,
                bits: sums,
            });
        }
        rows = next;
    }
    let last = rows.pop().expect("at least one row");
    let mut p = vec![zero; wa + wb];
    for (k, &n) in last.bits.iter().enumerate() {
        let pos = last.offset + k;
        if pos < p.len() {
            p[pos] = n;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::sim::for_each_operand_pair;
    use axmul_fabric::timing::{analyze, DelayModel};

    #[test]
    fn array_multiplier_exact_8x8() {
        let nl = array_mult_netlist(8, 8);
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], a * b, "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn array_multiplier_exact_odd_widths() {
        let nl = array_mult_netlist(5, 3);
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], a * b, "a={a} b={b}");
        })
        .unwrap();
        let nl1 = array_mult_netlist(4, 1);
        for_each_operand_pair(&nl1, |a, b, out| {
            assert_eq!(out[0], a * b, "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn array_lut_count_formula() {
        // 1 + (wb-1)*wa merged PP/adder LUTs.
        assert_eq!(array_mult_netlist(8, 8).lut_count(), 57);
        assert_eq!(array_mult_netlist(4, 4).lut_count(), 13);
    }

    #[test]
    fn csa_tree_exact_8x8() {
        let nl = csa_tree_mult_netlist(8, 8);
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], a * b, "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn csa_tree_exact_odd_widths() {
        let nl = csa_tree_mult_netlist(7, 5);
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], a * b, "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn ip_variants_exact_8x8() {
        for opt in [IpOpt::Area, IpOpt::Speed] {
            let ip = VivadoIp::new(8, opt);
            let nl = ip.netlist();
            for_each_operand_pair(&nl, |a, b, out| {
                assert_eq!(out[0], a * b, "{opt:?} a={a} b={b}");
            })
            .unwrap();
        }
    }

    #[test]
    fn speed_variant_is_faster_and_bigger() {
        let model = DelayModel::virtex7();
        let area = VivadoIp::new(8, IpOpt::Area).netlist();
        let speed = VivadoIp::new(8, IpOpt::Speed).netlist();
        let t_area = analyze(&area, &model).critical_path_ns;
        let t_speed = analyze(&speed, &model).critical_path_ns;
        assert!(
            t_speed < t_area,
            "speed {t_speed:.2}ns should beat area {t_area:.2}ns"
        );
        assert!(speed.lut_count() >= area.lut_count());
    }

    #[test]
    fn proposed_beats_ip_on_area() {
        // The headline Fig. 7 relation at 8x8: Ca (57 LUTs) is smaller
        // than both IP variants.
        for opt in [IpOpt::Area, IpOpt::Speed] {
            let luts = VivadoIp::new(8, opt).netlist().lut_count();
            assert!(luts > 57, "{opt:?} IP has {luts} LUTs");
        }
    }
}
