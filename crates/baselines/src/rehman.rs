//! The paper's baseline **W**: Rehman et al., *"Architectural-Space
//! Exploration of Approximate Multipliers"* (ICCAD 2016).
//!
//! No source for the exact configuration the DAC'18 paper synthesized
//! is available, but its elementary block is uniquely determined by the
//! published Table 5 statistics:
//!
//! * maximum error `7225 = 85²` ⇒ every 2×2 sub-block errs by exactly
//!   `1` in the same direction simultaneously at the maximum;
//! * exactly `31 = 2·16 − 1` maximum-error cases ⇒ operands whose
//!   2-bit digits are all drawn from `{1, 3}` on one side and all `1`
//!   on the other (16 + 16 − 1 combinations);
//! * mean error `1354.6875 = (3/16)·85²` ⇒ the kernel errs by 1 in
//!   exactly 3 of its 16 input combinations.
//!
//! Together these force the kernel: `1×1 → 0`, `1×3 → 2`, `3×1 → 2`,
//! exact elsewhere (i.e. the kernel computes
//! `p = a·b − [a odd ∧ b odd ∧ ¬(a₁∧b₁)]`, dropping `P0` unless both
//! operands are 3). Tests assert the full Table 5 row.

use axmul_core::behavioral::{Recursive, Summation};
use axmul_core::structural::compose_netlist;
use axmul_core::{Multiplier, WidthError};
use axmul_fabric::{Init, Netlist, NetlistBuilder};

/// The W 2×2 kernel: `1×1 → 0`, `1×3 → 2`, `3×1 → 2`, exact elsewhere.
#[must_use]
pub fn rehman_2x2(a: u64, b: u64) -> u64 {
    let (a, b) = (a & 3, b & 3);
    match (a, b) {
        (1, 1) => 0,
        (1, 3) | (3, 1) => 2,
        _ => a * b,
    }
}

/// The Rehman (W) approximate multiplier at `bits`×`bits`
/// (`bits` ∈ {2, 4, 8, 16, 32}).
///
/// # Examples
///
/// ```
/// use axmul_baselines::RehmanW;
/// use axmul_core::Multiplier;
///
/// let w = RehmanW::new(8)?;
/// assert_eq!(w.multiply(1, 1), 0);   // the kernel's signature error
/// assert_eq!(w.multiply(170, 170), 28900); // exact when no digit pairs up 1-with-odd
/// # Ok::<(), axmul_core::WidthError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RehmanW {
    inner: Recursive<fn(u64, u64) -> u64>,
}

impl RehmanW {
    /// Creates the `bits`×`bits` W multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] unless `bits` is a power of two in
    /// `2..=32`.
    pub fn new(bits: u32) -> Result<Self, WidthError> {
        Ok(RehmanW {
            inner: Recursive::new(
                "W",
                bits,
                2,
                rehman_2x2 as fn(u64, u64) -> u64,
                Summation::Accurate,
            )?,
        })
    }
}

impl Multiplier for RehmanW {
    fn a_bits(&self) -> u32 {
        self.inner.a_bits()
    }
    fn b_bits(&self) -> u32 {
        self.inner.b_bits()
    }
    fn multiply(&self, a: u64, b: u64) -> u64 {
        self.inner.multiply(a, b)
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// The W 2×2 kernel as a netlist: two fractured `LUT6_2`s.
///
/// `O6/O5` pairs: (`P1 = A1B0 ⊕ A0B1`, `P0 = A0A1B0B1`) and
/// (`P2 = A1B1∧¬(A0∧B0)`, `P3 = A0A1B0B1`).
#[must_use]
pub fn rehman_kernel_netlist() -> Netlist {
    let mut bld = NetlistBuilder::new("rehman2x2");
    let a = bld.inputs("a", 2);
    let b = bld.inputs("b", 2);
    let zero = bld.constant(false);
    let one = bld.constant(true);
    let bitat = |i: u8, k: u8| i >> k & 1 == 1;
    let and4 = |i: u8| bitat(i, 0) && bitat(i, 1) && bitat(i, 2) && bitat(i, 3);
    let lo = Init::from_dual(
        |i| (bitat(i, 1) && bitat(i, 2)) ^ (bitat(i, 0) && bitat(i, 3)),
        and4,
    );
    let (p1, p0) = bld.lut6_2(lo, [a[0], a[1], b[0], b[1], zero, one]);
    let hi = Init::from_dual(
        |i| bitat(i, 1) && bitat(i, 3) && !(bitat(i, 0) && bitat(i, 2)),
        and4,
    );
    let (p2, p3) = bld.lut6_2(hi, [a[0], a[1], b[0], b[1], zero, one]);
    bld.output_bus("p", &[p0, p1, p2, p3]);
    bld.finish().expect("rehman kernel is well-formed")
}

/// Structural W multiplier netlist at `bits`×`bits`, composed with the
/// same accurate ternary-adder summation as the proposed designs.
///
/// # Errors
///
/// Returns [`WidthError`] unless `bits` is a power of two in `2..=32`.
pub fn rehman_netlist(bits: u32) -> Result<Netlist, WidthError> {
    compose_netlist(&rehman_kernel_netlist(), bits, Summation::Accurate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use axmul_fabric::sim::for_each_operand_pair;

    #[test]
    fn kernel_truth_table() {
        for a in 0..4u64 {
            for b in 0..4u64 {
                let want = match (a, b) {
                    (1, 1) => 0,
                    (1, 3) | (3, 1) => 2,
                    _ => a * b,
                };
                assert_eq!(rehman_2x2(a, b), want, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn table5_statistics_exact() {
        let w = RehmanW::new(8).unwrap();
        let mut occ = 0u64;
        let mut max = 0i64;
        let mut max_occ = 0u64;
        let mut sum = 0i64;
        let mut rel = 0.0f64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let e = w.error(a, b);
                assert!(e >= 0, "W only under-estimates");
                if e != 0 {
                    occ += 1;
                    sum += e;
                    rel += e as f64 / (a * b) as f64;
                    if e > max {
                        max = e;
                        max_occ = 1;
                    } else if e == max {
                        max_occ += 1;
                    }
                }
            }
        }
        assert_eq!(max, 7225);
        assert_eq!(max_occ, 31);
        assert_eq!(occ, 53375);
        assert!((sum as f64 / 65536.0 - 1354.6875).abs() < 1e-9);
        assert!((rel / 65536.0 - 0.1438777).abs() < 1e-6);
    }

    #[test]
    fn max_error_operands_are_the_expected_family() {
        // 0x55 (digits all 1) against any operand with digits in {1,3}.
        let w = RehmanW::new(8).unwrap();
        assert_eq!(w.error(0x55, 0x55), 7225);
        assert_eq!(w.error(0x55, 0xFF), 7225);
        assert_eq!(w.error(0xDD, 0x55), 7225);
        assert_ne!(w.error(0xFF, 0xFF), 7225, "3x3 digits are exact");
    }

    #[test]
    fn kernel_netlist_matches_behavioral() {
        let nl = rehman_kernel_netlist();
        assert_eq!(nl.lut_count(), 2);
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], rehman_2x2(a, b), "a={a} b={b}");
        })
        .unwrap();
    }

    #[test]
    fn recursive_netlist_matches_behavioral_8x8() {
        let nl = rehman_netlist(8).unwrap();
        let w = RehmanW::new(8).unwrap();
        for_each_operand_pair(&nl, |a, b, out| {
            assert_eq!(out[0], w.multiply(a, b), "a={a} b={b}");
        })
        .unwrap();
    }
}
